package bench

import (
	"fmt"
	"time"

	"graphm/internal/core"
	"graphm/internal/service"
	"graphm/internal/shard"
)

// sharding sweeps the scale-out width: the same service workload admitted
// to a shard.Group of 1, 2, 4 and 8 shards over one dataset. The group's
// determinism contract makes the schedule-independent work counters
// identical at every width (the sweep asserts it), so the table isolates
// what sharding actually costs and buys: cross-shard handoff traffic on the
// byte-metered network, per-shard round counts, and the wall-clock effect
// of splitting one sharing controller into N.
func (h *Harness) sharding() ([]*Table, error) {
	env, err := h.gridEnv("livej")
	if err != nil {
		return nil, err
	}
	parts := env.GridP * env.GridP
	table := &Table{
		Title:   "sharded scale-out: identical work, metered cross-shard traffic (livej, 8 jobs)",
		Headers: []string{"shards", "wall", "jobs/s", "rounds", "shared loads", "net xfer", "net msgs", "scanned Medges"},
	}
	algos := []string{"pagerank", "wcc", "bfs", "sssp"}
	var baseWork map[int]uint64
	for _, n := range []int{1, 2, 4, 8} {
		if n > parts {
			continue
		}
		cfg := core.DefaultConfig(env.Spec.LLCBytes)
		cfg.Cores = h.Cores
		grp, err := shard.New(env.Grid.AsLayout(), n, env.Spec.MemBudget, cfg)
		if err != nil {
			return nil, err
		}
		svc := service.NewWithBackend(grp, service.Config{MaxInFlight: 8, Seed: h.Seed})
		start := time.Now()
		var tickets []*service.Ticket
		for i := 0; i < 8; i++ {
			tk, err := svc.Submit(service.Request{
				Tenant: fmt.Sprintf("t%d", i%2),
				Algo:   algos[i%len(algos)],
			})
			if err != nil {
				return nil, err
			}
			tickets = append(tickets, tk)
		}
		if err := svc.Drain(); err != nil {
			return nil, err
		}
		if err := grp.Wait(); err != nil {
			return nil, err
		}
		wall := time.Since(start)

		work := make(map[int]uint64, len(tickets))
		var scanned uint64
		for _, tk := range tickets {
			if st := tk.Wait(); st != service.StatusDone {
				return nil, fmt.Errorf("sharding: shards=%d ticket %d finished %v", n, tk.ID, st)
			}
			work[tk.ID] = tk.Job().Met.ScannedEdges
			scanned += tk.Job().Met.ScannedEdges
		}
		if baseWork == nil {
			baseWork = work
		} else {
			for id, want := range baseWork {
				if work[id] != want {
					return nil, fmt.Errorf("sharding: shards=%d job %d scanned %d edges, 1-shard scanned %d — determinism contract broken",
						n, id, work[id], want)
				}
			}
		}
		stats := grp.StatsSnapshot()
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			wall.Round(time.Millisecond).String(),
			f2(float64(len(tickets)) / wall.Seconds()),
			fmt.Sprintf("%d", stats.Rounds),
			fmt.Sprintf("%d", stats.SharedLoads),
			mbu(grp.Network().Bytes()),
			human(grp.Network().Messages()),
			f2(float64(scanned) / 1e6),
		})
	}
	table.Notes = append(table.Notes,
		"per-job scanned-edge counts are asserted identical at every shard width (the group's determinism contract)",
		"net xfer is the per-vertex job state shipped between shards at gather handoffs, billed to SimIONS via the cluster network model")
	return []*Table{table}, nil
}

package bench

import (
	"fmt"
	"time"

	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/storage"
	"graphm/internal/trace"
)

// Table 3: preprocessing time of GridGraph alone vs GridGraph-M (grid build
// plus GraphM's Formula-1 sizing and Algorithm-1 labelling pass), with the
// extra metadata cost the paper discusses alongside.
func (h *Harness) table3() ([]*Table, error) {
	t := &Table{
		Title:   "Table 3: preprocessing time (ms) and GraphM metadata overhead",
		Headers: []string{"dataset", "GridGraph", "GridGraph-M", "overhead", "metadata", "meta/graph"},
	}
	for _, name := range graph.DatasetNames() {
		g, spec, err := graph.Dataset(name)
		if err != nil {
			return nil, err
		}
		// GridGraph preprocessing: grid conversion only.
		start := time.Now()
		if _, err := NewGridEnvFromGraph(g, spec); err != nil {
			return nil, err
		}
		gridMS := float64(time.Since(start).Microseconds()) / 1000

		// GridGraph-M: conversion plus Init() (chunk labelling).
		start = time.Now()
		grid2, err := NewGridEnvFromGraph(g, spec)
		if err != nil {
			return nil, err
		}
		mem := storage.NewMemory(grid2.Disk, spec.MemBudget)
		cache, err := memsim.NewCache(memsim.DefaultConfig(spec.LLCBytes))
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(grid2.Grid.AsLayout(), mem, cache, core.DefaultConfig(spec.LLCBytes))
		if err != nil {
			return nil, err
		}
		gridMMS := float64(time.Since(start).Microseconds()) / 1000
		meta := sys.StatsSnapshot().MetadataBytes
		t.Rows = append(t.Rows, []string{
			name, f2(gridMS), f2(gridMMS),
			pct(safeRatio(gridMMS-gridMS, gridMS)),
			mb(meta), pct(float64(meta) / float64(g.SizeBytes())),
		})
	}
	t.Notes = append(t.Notes,
		"paper: labelling adds ~4% (in-memory) to ~16.1% (out-of-core); metadata 5.5%-19.2% of graph size")
	return []*Table{t}, nil
}

// NewGridEnvFromGraph builds a GridEnv from an already generated graph
// (used by Table 3 to time the conversion in isolation).
func NewGridEnvFromGraph(g *graph.Graph, spec graph.DatasetSpec) (*GridEnv, error) {
	disk := storage.NewDisk()
	p := gridP(spec)
	grid, err := gridgraph.Build(g, p, disk)
	if err != nil {
		return nil, err
	}
	return &GridEnv{Spec: spec, G: g, Disk: disk, Grid: grid, GridP: p}, nil
}

// runOverall executes the 16-job rotation under all three schemes on every
// dataset, caching results for Figures 9–14.
func (h *Harness) runOverall() (map[string]map[string]*SchemeResult, error) {
	if h.overall != nil {
		return h.overall, nil
	}
	out := make(map[string]map[string]*SchemeResult)
	for _, name := range graph.DatasetNames() {
		env, err := h.gridEnv(name)
		if err != nil {
			return nil, err
		}
		out[name] = make(map[string]*SchemeResult)
		for _, scheme := range Schemes {
			res, err := env.RunScheme(scheme, func() *jobs.Workload {
				return jobs.Rotation(h.JobCount, h.Seed)
			}, RunOptions{Cores: h.Cores})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, scheme, err)
			}
			out[name][scheme] = res
		}
	}
	h.overall = out
	return out, nil
}

// overallTable renders one metric of the overall comparison across
// datasets and schemes, optionally normalised to scheme S.
func (h *Harness) overallTable(title string, metric func(*SchemeResult) float64, normalise bool, format func(float64) string) (*Table, error) {
	all, err := h.runOverall()
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title, Headers: []string{"dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"}}
	for _, name := range graph.DatasetNames() {
		base := 1.0
		if normalise {
			base = metric(all[name][SchemeS])
		}
		row := []string{name}
		for _, scheme := range Schemes {
			v := metric(all[name][scheme])
			if normalise && base > 0 {
				v /= base
			}
			row = append(row, format(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure 9: total execution time of 16 concurrent jobs, normalised to
// GridGraph-S.
func (h *Harness) fig9() ([]*Table, error) {
	t, err := h.overallTable(
		"Figure 9: total execution time for 16 jobs (normalised to GridGraph-S)",
		func(r *SchemeResult) float64 { return r.MakespanSec() }, true, f3)
	if err != nil {
		return nil, err
	}
	all, _ := h.runOverall()
	inMem, outCore := speedupSummary(all)
	t.Notes = append(t.Notes,
		fmt.Sprintf("GraphM speedup vs S: in-memory %.2fx avg, out-of-core %.2fx avg (paper: ~2.6x / ~11.6x)", inMem, outCore),
		"paper shape: M < C <= S in-memory; C > S out-of-core (contention)")
	return []*Table{t}, nil
}

func speedupSummary(all map[string]map[string]*SchemeResult) (inMem, outCore float64) {
	nIn, nOut := 0, 0
	for _, name := range graph.DatasetNames() {
		spec, _ := graph.Spec(name)
		s := all[name][SchemeS].MakespanSec()
		m := all[name][SchemeM].MakespanSec()
		if m <= 0 {
			continue
		}
		if spec.OutOfCore {
			outCore += s / m
			nOut++
		} else {
			inMem += s / m
			nIn++
		}
	}
	if nIn > 0 {
		inMem /= float64(nIn)
	}
	if nOut > 0 {
		outCore /= float64(nOut)
	}
	return inMem, outCore
}

// Figure 10: execution time breakdown — graph processing vs data access.
func (h *Harness) fig10() ([]*Table, error) {
	all, err := h.runOverall()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 10: execution time breakdown (ratio vs GridGraph-S total)",
		Headers: []string{"dataset", "scheme", "processing", "data access", "access share"},
	}
	for _, name := range graph.DatasetNames() {
		base := float64(all[name][SchemeS].ComputeNS+all[name][SchemeS].MemNS+all[name][SchemeS].IONS) / 1e9
		for _, scheme := range Schemes {
			r := all[name][scheme]
			proc := float64(r.ComputeNS) / 1e9
			acc := float64(r.MemNS+r.IONS) / 1e9
			t.Rows = append(t.Rows, []string{
				name, "GridGraph-" + scheme,
				f3(proc / base), f3(acc / base), pct(acc / (proc + acc)),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: data access dominates; M cuts access up to 11-13x on out-of-core graphs")
	return []*Table{t}, nil
}

// Figure 11: peak memory usage, normalised to GridGraph-C.
func (h *Harness) fig11() ([]*Table, error) {
	t, err := h.overallTable(
		"Figure 11: memory usage for 16 jobs (normalised to GridGraph-C)",
		func(r *SchemeResult) float64 { return float64(r.MemPeak) }, false,
		func(v float64) string { return mb(int64(v)) })
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper shape: S < M < C (M shares one graph copy but keeps 16 jobs' state resident)")
	return []*Table{t}, nil
}

// Figure 12: total I/O overhead, normalised to GridGraph-S.
func (h *Harness) fig12() ([]*Table, error) {
	t, err := h.overallTable(
		"Figure 12: total I/O overhead for 16 jobs (normalised to GridGraph-S)",
		func(r *SchemeResult) float64 { return float64(r.IOBytes) }, true, f3)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"paper: no difference in-memory (graph read once); out-of-core M ~9-10x less I/O, C > S")
	return []*Table{t}, nil
}

// Figure 13: LLC miss rate.
func (h *Harness) fig13() ([]*Table, error) {
	t, err := h.overallTable(
		"Figure 13: LLC miss rate for 16 jobs",
		func(r *SchemeResult) float64 { return r.LLCMissRate() }, false, pct)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: e.g. UK-union 45.3% (S) / 43.3% (C) / 15.69% (M)")
	return []*Table{t}, nil
}

// Figure 14: volume of data swapped into the LLC, normalised to GridGraph-C.
func (h *Harness) fig14() ([]*Table, error) {
	all, err := h.runOverall()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 14: volume swapped into the LLC (normalised to GridGraph-C)",
		Headers: []string{"dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"},
	}
	for _, name := range graph.DatasetNames() {
		base := float64(all[name][SchemeC].SwappedBytes)
		row := []string{name}
		for _, scheme := range Schemes {
			row = append(row, f3(float64(all[name][scheme].SwappedBytes)/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: S ~65% of C; M ~55% of S on UK-union")
	return []*Table{t}, nil
}

// Figure 15: replay of the real trace (different job counts at different
// times) under the three schemes.
func (h *Harness) fig15() ([]*Table, error) {
	tr := trace.Generate(168, h.Seed)
	t := &Table{
		Title:   "Figure 15: trace-replay execution time (normalised to GridGraph-S)",
		Headers: []string{"dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"},
	}
	for _, name := range graph.DatasetNames() {
		env, err := h.gridEnv(name)
		if err != nil {
			return nil, err
		}
		var base float64
		row := []string{name}
		for _, scheme := range Schemes {
			res, err := env.RunScheme(scheme, func() *jobs.Workload {
				return jobs.FromTrace(tr, 24, time.Millisecond)
			}, RunOptions{Cores: h.Cores, TimeScale: 1})
			if err != nil {
				return nil, err
			}
			v := res.MakespanSec()
			if scheme == SchemeS {
				base = v
			}
			row = append(row, f3(v/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: M improves S by 1.5-7.1x and C by 1.48-9.8x on the real trace")
	return []*Table{t}, nil
}

// Figure 16: sensitivity to the Poisson submission rate λ on UK-union.
func (h *Harness) fig16() ([]*Table, error) {
	env, err := h.gridEnv(graph.PresetUKUnion)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 16: execution time vs submission rate lambda (UK-union, normalised to S)",
		Headers: []string{"lambda", "GridGraph-S", "GridGraph-C", "GridGraph-M"},
	}
	for _, lambda := range []float64{2, 4, 6, 8, 10} {
		var base float64
		row := []string{fmt.Sprintf("%.0f", lambda)}
		for _, scheme := range Schemes {
			// Arrival density only matters where jobs share state: scheme M.
			// S queues arrivals (sequential makespan is arrival-independent)
			// and C's jobs are fully independent, so their delays are
			// skipped to keep wall time down; M pays real inter-arrival
			// gaps sized against its job durations so sparse arrivals
			// genuinely reduce overlap (and thus sharing).
			timeScale := 0.0
			if scheme == SchemeM {
				timeScale = 1.0
			}
			res, err := env.RunScheme(scheme, func() *jobs.Workload {
				return jobs.Poisson(h.JobCount, lambda, 800*time.Millisecond, h.Seed)
			}, RunOptions{Cores: h.Cores, TimeScale: timeScale})
			if err != nil {
				return nil, err
			}
			v := res.MakespanSec()
			if scheme == SchemeS {
				base = v
			}
			row = append(row, f3(v/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: higher lambda (denser arrivals) -> higher GraphM speedup")
	return []*Table{t}, nil
}

// Figure 17: 16 BFS or SSSP jobs with roots within k hops of a centre —
// closer roots mean stronger similarity and larger GraphM gains.
func (h *Harness) fig17() ([]*Table, error) {
	env, err := h.gridEnv(graph.PresetLiveJ)
	if err != nil {
		return nil, err
	}
	centre, _ := env.G.MaxOutDegree()
	var tables []*Table
	for _, algo := range []string{"bfs", "sssp"} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 17 (%s): execution time vs root spread in hops (normalised to S)", algo),
			Headers: []string{"hops", "GridGraph-S", "GridGraph-C", "GridGraph-M"},
		}
		for hops := 1; hops <= 5; hops++ {
			var base float64
			row := []string{fmt.Sprintf("%d", hops)}
			for _, scheme := range Schemes {
				res, err := env.RunScheme(scheme, func() *jobs.Workload {
					return jobs.HopConstrained(algo, h.JobCount, env.G, centre, hops, h.Seed)
				}, RunOptions{Cores: h.Cores})
				if err != nil {
					return nil, err
				}
				v := res.MakespanSec()
				if scheme == SchemeS {
					base = v
				}
				row = append(row, f3(v/base))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, "paper: closer roots (fewer hops) -> stronger similarity -> higher speedup")
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure 18: the Section 4 scheduling strategy on vs off.
func (h *Harness) fig18() ([]*Table, error) {
	t := &Table{
		Title:   "Figure 18: total execution time without/with the scheduling strategy (normalised to without)",
		Headers: []string{"dataset", "GridGraph-M-without", "GridGraph-M"},
	}
	for _, name := range graph.DatasetNames() {
		env, err := h.gridEnv(name)
		if err != nil {
			return nil, err
		}
		wf := func() *jobs.Workload { return jobs.Rotation(h.JobCount, h.Seed) }
		without, err := env.RunScheme(SchemeM, wf, RunOptions{Cores: h.Cores, SchedulerOff: true})
		if err != nil {
			return nil, err
		}
		with, err := env.RunScheme(SchemeM, wf, RunOptions{Cores: h.Cores})
		if err != nil {
			return nil, err
		}
		base := without.MakespanSec()
		t.Rows = append(t.Rows, []string{name, "1.000", f3(with.MakespanSec() / base)})
	}
	t.Notes = append(t.Notes, "paper: with-scheduler is ~72.5% of without on Clueweb12")
	return []*Table{t}, nil
}

// Figure 19: scaling the number of concurrent PageRank jobs on Clueweb.
func (h *Harness) fig19() ([]*Table, error) {
	env, err := h.gridEnv(graph.PresetClueweb)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 19: total execution time vs number of PageRank jobs (Clueweb, sim s)",
		Headers: []string{"jobs", "GridGraph-S", "GridGraph-C", "GridGraph-M", "M speedup vs S"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", n)}
		var sSec, mSec float64
		for _, scheme := range Schemes {
			res, err := env.RunScheme(scheme, func() *jobs.Workload {
				return jobs.RotationOf("pagerank", n, h.Seed)
			}, RunOptions{Cores: h.Cores})
			if err != nil {
				return nil, err
			}
			v := res.MakespanSec()
			switch scheme {
			case SchemeS:
				sSec = v
			case SchemeM:
				mSec = v
			}
			row = append(row, f3(v))
		}
		row = append(row, f2(sSec/mSec))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: speedups 1.79/3.04/4.92/5.94 at 2/4/8/16 jobs; ~1x at a single job")
	return []*Table{t}, nil
}

// Figure 20: scaling the number of cores with 16 jobs on Twitter.
func (h *Harness) fig20() ([]*Table, error) {
	env, err := h.gridEnv(graph.PresetTwitter)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Figure 20: total execution time vs number of cores (Twitter, 16 jobs, sim s)",
		Headers: []string{"cores", "GridGraph-S", "GridGraph-C", "GridGraph-M"},
	}
	for _, cores := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", cores)}
		for _, scheme := range Schemes {
			res, err := env.RunScheme(scheme, func() *jobs.Workload {
				return jobs.Rotation(h.JobCount, h.Seed)
			}, RunOptions{Cores: cores})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(res.MakespanSec()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: M best at every core count, gap widens with more cores")
	return []*Table{t}, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"graphm/internal/core"
	"graphm/internal/memsim"
	"graphm/internal/server"
	"graphm/internal/service"
	"graphm/internal/storage"
	"graphm/internal/trace"
)

// serveHTTP benches the daemon end to end: the Figure-2 trace fired through
// a real loopback socket against internal/server, open-loop, with the trace
// timeline compressed (one trace hour = one wall second) and then sped up a
// further speedup x. Unlike the openloop experiment, every submission pays
// the full network path — JSON encode, TCP, tenant resolution, admission —
// so the table measures what a client of the daemon actually sees: accept /
// backpressure split, sustained submission rate, and the rolling-window
// queue-wait SLOs the daemon reports at drain.
func (h *Harness) serveHTTP() ([]*Table, error) {
	e, err := h.gridEnv("twitter")
	if err != nil {
		return nil, err
	}
	const hours = 12
	t := &Table{
		Title:   fmt.Sprintf("serve-http: %dh Figure-2 trace through the HTTP daemon, twitter", hours),
		Headers: []string{"speedup", "arrivals", "accepted", "429", "jobs/s", "wait p50", "wait p99", "shared loads", "mid-round joins"},
		Notes: []string{
			"open-loop over a real loopback socket: arrivals never wait on completions",
			"wait quantiles are the daemon's rolling-window SLO view at drain (internal/slo)",
		},
	}
	for _, speedup := range []float64{10, 50} {
		row, err := h.serveHTTPSpeedup(e, hours, speedup)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// serveHTTPSpeedup stands up one daemon on an ephemeral loopback port,
// replays the trace against it at the given speedup, drains over the socket
// and returns the table row.
func (h *Harness) serveHTTPSpeedup(e *GridEnv, hours int, speedup float64) ([]string, error) {
	e.Disk.ResetCounters()
	e.Disk.DropCaches()
	e.Disk.SetPageCache(e.Spec.MemBudget)
	mem := storage.NewMemory(e.Disk, e.Spec.MemBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(e.Spec.LLCBytes))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(e.Spec.LLCBytes)
	cfg.Cores = h.Cores
	sys, err := core.NewSystem(e.Grid.AsLayout(), mem, cache, cfg)
	if err != nil {
		return nil, err
	}
	srv := server.New(sys, service.Config{
		MaxInFlight:        8,
		MaxQueuedPerTenant: 64,
		Seed:               h.Seed,
	}, server.Config{SLOWindow: time.Hour})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	tr := trace.Generate(hours, h.Seed)
	client := &http.Client{}
	var (
		mu       sync.Mutex
		accepted int
		rejected int
		wg       sync.WaitGroup
	)
	start := time.Now()
	for _, ev := range tr.Events {
		at := time.Duration(ev.AtHour / speedup * float64(time.Second))
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(ev trace.Event) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"algo": ev.Algo, "seed": ev.Seed})
			req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("X-Tenant", fmt.Sprintf("t%d", ev.Seed%4))
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			mu.Lock()
			if resp.StatusCode == http.StatusAccepted {
				accepted++
			} else {
				rejected++
			}
			mu.Unlock()
		}(ev)
	}
	wg.Wait()
	st := srv.Drain()
	wall := time.Since(start)

	return []string{
		fmt.Sprintf("%.0fx", speedup),
		fmt.Sprintf("%d", len(tr.Events)),
		fmt.Sprintf("%d", accepted),
		fmt.Sprintf("%d", rejected),
		fmt.Sprintf("%.1f", float64(len(tr.Events))/wall.Seconds()),
		fmt.Sprintf("%v", time.Duration(st.QueueWait.P50*float64(time.Second)).Round(time.Microsecond)),
		fmt.Sprintf("%v", time.Duration(st.QueueWait.P99*float64(time.Second)).Round(time.Microsecond)),
		fmt.Sprintf("%d", st.SharedLoads),
		fmt.Sprintf("%d", st.MidRoundJoins),
	}, nil
}

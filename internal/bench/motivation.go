package bench

import (
	"fmt"

	"graphm/internal/graph"
	"graphm/internal/jobs"
	"graphm/internal/trace"
)

// Figure 2: the number of concurrent jobs over one week of the (synthetic
// stand-in for the) social-network trace.
func (h *Harness) fig2() ([]*Table, error) {
	tr := trace.Generate(168, h.Seed)
	series := tr.Concurrency(1.0)
	t := &Table{
		Title:   "Figure 2: number of concurrent jobs traced on a social network (168h)",
		Headers: []string{"hour", "jobs", "bar"},
	}
	for hr := 0; hr < len(series); hr += 6 {
		bar := ""
		for i := 0; i < series[hr]; i++ {
			bar += "#"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", hr), fmt.Sprintf("%d", series[hr]), bar})
	}
	st := tr.ConcurrencyStats(1.0)
	t.Notes = append(t.Notes,
		fmt.Sprintf("peak=%d mean=%.1f (paper: peak>30, mean~16)", st.Peak, st.Mean))
	return []*Table{t}, nil
}

// Figure 3: concurrent jobs on the *original* GridGraph (scheme C, no
// GraphM) over Twitter — total memory usage, total LLC misses, average LPI
// and average execution time for 1/2/4/8 concurrent jobs per algorithm.
func (h *Harness) fig3() ([]*Table, error) {
	env, err := h.gridEnv(graph.PresetTwitter)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 2, 4, 8}
	algos := []string{"pagerank", "wcc", "bfs", "sssp"}

	mkTable := func(title, unit string) *Table {
		t := &Table{Title: title, Headers: []string{"algorithm"}}
		for _, n := range counts {
			t.Headers = append(t.Headers, fmt.Sprintf("%dj%s", n, unit))
		}
		return t
	}
	memT := mkTable("Figure 3(a): total memory usage on GridGraph (concurrent, no GraphM)", "")
	llcT := mkTable("Figure 3(b): total LLC misses", "")
	lpiT := mkTable("Figure 3(c): average LPI (misses per instruction)", "")
	timeT := mkTable("Figure 3(d): average execution time per job (sim s)", "")

	for _, algo := range algos {
		memR := []string{algo}
		llcR := []string{algo}
		lpiR := []string{algo}
		timeR := []string{algo}
		for _, n := range counts {
			seed := h.Seed + int64(n)*13
			res, err := env.RunScheme(SchemeC, func() *jobs.Workload {
				return jobs.RotationOf(algo, n, seed)
			}, RunOptions{Cores: h.Cores})
			if err != nil {
				return nil, err
			}
			memR = append(memR, mb(res.MemPeak))
			llcR = append(llcR, human(res.LLCMisses))
			lpiR = append(lpiR, f3(res.LPI))
			timeR = append(timeR, f3(res.AvgJobSec()))
		}
		memT.Rows = append(memT.Rows, memR)
		llcT.Rows = append(llcT.Rows, llcR)
		lpiT.Rows = append(lpiT.Rows, lpiR)
		timeT.Rows = append(timeT.Rows, timeR)
	}
	memT.Notes = append(memT.Notes, "memory grows ~linearly with jobs: redundant graph copies (paper 3a)")
	llcT.Notes = append(llcT.Notes, "LLC misses grow with jobs: redundant swapping (paper 3b)")
	lpiT.Notes = append(lpiT.Notes, "LPI rises with jobs: cache interference (paper 3c, ~10% at 8 jobs)")
	timeT.Notes = append(timeT.Notes, "per-job time rises with contention (paper 3d)")
	return []*Table{memT, llcT, lpiT, timeT}, nil
}

// Figure 4: spatial and temporal similarity in the trace — the share of the
// graph concurrently processed by >1/2/4/8 jobs per hour, and the mean
// number of times a shared partition is accessed per hour.
func (h *Harness) fig4() ([]*Table, error) {
	tr := trace.Generate(168, h.Seed)
	series := tr.Concurrency(1.0)

	shareT := &Table{
		Title:   "Figure 4(a): percentage of graph shared by # concurrent jobs",
		Headers: []string{"hour", "#>1", "#>2", "#>4", "#>8"},
	}
	accessT := &Table{
		Title:   "Figure 4(b): average accesses to shared partitions per hour",
		Headers: []string{"hour", "avg accesses"},
	}
	// Coverage per traversal: network-intensive mixes touch most of the
	// graph; 0.9 matches the paper's >82% shared at typical concurrency.
	const coverage = 0.9
	for hr := 1; hr <= 6; hr++ {
		k := series[(hr*20)%len(series)] // sample distinct load levels
		if k < 2 {
			k = 2
		}
		p := trace.Sharing(k, coverage)
		shareT.Rows = append(shareT.Rows, []string{
			fmt.Sprintf("%d", hr), pct(p.MoreThan1), pct(p.MoreThan2), pct(p.MoreThan4), pct(p.MoreThan8),
		})
		// Each of the k jobs touches a shared partition ~coverage times per
		// traversal; temporal similarity is the expected re-access count.
		accessT.Rows = append(accessT.Rows, []string{
			fmt.Sprintf("%d", hr), f2(float64(k) * coverage / 2),
		})
	}
	shareT.Notes = append(shareT.Notes, "paper: >82% of the graph shared by concurrent jobs")
	accessT.Notes = append(accessT.Notes, "paper: shared data accessed ~7 times per hour on average")
	return []*Table{shareT, accessT}, nil
}

package bench

import (
	"fmt"
	"time"

	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// ablation exercises the design choices DESIGN.md calls out:
//
//  1. chunk size: Formula (1) vs fixed-too-small vs fixed-too-large —
//     Section 3.2 argues both extremes lose (sync overhead vs LLC spill);
//  2. fine-grained synchronization on vs off while still sharing memory —
//     isolates the temporal-similarity (LLC) benefit from the
//     spatial-similarity (memory/I/O) benefit.
func (h *Harness) ablation() ([]*Table, error) {
	chunkT, err := h.ablateChunkSize()
	if err != nil {
		return nil, err
	}
	syncT, err := h.ablateFineSync()
	if err != nil {
		return nil, err
	}
	return []*Table{chunkT, syncT}, nil
}

func (h *Harness) ablateChunkSize() (*Table, error) {
	g, spec, err := graph.Dataset(graph.PresetTwitter)
	if err != nil {
		return nil, err
	}
	env, err := NewGridEnvFromGraph(g, spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: chunk size (Twitter, 8 jobs under GraphM)",
		Headers: []string{"chunk sizing", "chunk bytes", "chunks", "LLC miss rate", "swapped", "sim s", "wall (sync cost)"},
	}
	// Formula (1) baseline plus forced extremes via LLC-size overrides that
	// feed the sizing formula, holding the *actual* simulated LLC fixed.
	configs := []struct {
		name     string
		override func(cfg *core.Config)
	}{
		{"formula(1)", func(cfg *core.Config) {}},
		{"too small (1/16)", func(cfg *core.Config) {
			cfg.LLCBytes = spec.LLCBytes / 16
			cfg.Reserved = cfg.LLCBytes / 8
		}},
		{"too large (16x)", func(cfg *core.Config) {
			cfg.LLCBytes = spec.LLCBytes * 16
			cfg.Reserved = cfg.LLCBytes / 8
		}},
	}
	for _, c := range configs {
		mem := storage.NewMemory(env.Disk, spec.MemBudget)
		cache, err := memsim.NewCache(memsim.DefaultConfig(spec.LLCBytes))
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(spec.LLCBytes)
		cfg.Cores = h.Cores
		c.override(&cfg)
		sys, err := core.NewSystem(env.Grid.AsLayout(), mem, cache, cfg)
		if err != nil {
			return nil, err
		}
		w := jobs.Rotation(8, h.Seed)
		start := time.Now()
		if err := sys.Run(w.Jobs); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		res := &SchemeResult{Scheme: SchemeM, Jobs: len(w.Jobs), Cores: h.Cores}
		collectJobMetrics(res, w.Jobs)
		res.SwappedBytes = cache.SwappedBytes()
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprintf("%d", sys.ChunkBytes()),
			fmt.Sprintf("%d", sys.StatsSnapshot().NumChunks),
			pct(res.LLCMissRate()),
			mbu(res.SwappedBytes),
			f3(res.MakespanSec()),
			wall.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"Section 3.2: too small -> frequent synchronization (chunk count and wall time grow);",
		"too large -> a chunk spills the LLC (miss rate and swapped volume grow)")
	return t, nil
}

func (h *Harness) ablateFineSync() (*Table, error) {
	env, err := h.gridEnv(graph.PresetUKUnion)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: fine-grained synchronization (UK-union, 16 jobs, buffers always shared)",
		Headers: []string{"configuration", "LLC miss rate", "swapped", "makespan (sim s)"},
	}
	for _, mode := range []struct {
		name string
		off  bool
	}{{"share+sync (GraphM)", false}, {"share only (sync off)", true}} {
		res, err := env.RunScheme(SchemeM, func() *jobs.Workload {
			return jobs.Rotation(h.JobCount, h.Seed)
		}, RunOptions{Cores: h.Cores, FineSyncOff: mode.off})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mode.name, pct(res.LLCMissRate()), mbu(res.SwappedBytes), f3(res.MakespanSec()),
		})
	}
	t.Notes = append(t.Notes, "sync exploits temporal similarity: chunks are reused in the LLC across jobs")
	return t, nil
}

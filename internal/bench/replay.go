package bench

import (
	"fmt"
	"time"

	"graphm/internal/replay"
)

// replayExperiment is the Figure 15 successor for the service era: instead
// of the batch trace replay of fig15 (scheme S/C/M makespans), it replays
// the synthetic week through the online admission layer on a virtual clock
// and sweeps the in-flight cap. The Figure 15 shape — sharing paying off as
// concurrency rises — shows up as the shared-load amortization climbing
// with the cap while the queue-wait SLOs collapse.
func (h *Harness) replayExperiment() ([]*Table, error) {
	hours := 48
	t := &Table{
		Title: fmt.Sprintf("replay: %dh of the week-in-the-life trace through the admission service (virtual clock)", hours),
		Headers: []string{"cap", "admitted", "rejected", "p50 wait", "p99 wait", "mean/peak infl",
			"shared%", "shared loads", "mid-round joins", "wall"},
		Notes: []string{
			"virtual clock: a week of queue waits and runtimes costs seconds of wall time (ticket log is seed-deterministic)",
			"shared%: time-weighted fraction of the graph touched by >1 in-flight job (paper fig 4: >82%)",
			"shared loads / mid-round joins: real streaming through the sharing controller, rising with the cap (fig 15 shape)",
		},
	}
	for _, cap := range []int{8, 16, 24} {
		rep, err := replay.Run(replay.Config{Hours: hours, Seed: h.Seed, MaxInFlight: cap})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cap),
			fmt.Sprintf("%d", rep.Admitted),
			fmt.Sprintf("%d", rep.Rejected),
			fmt.Sprintf("%.3fh", rep.WaitP50),
			fmt.Sprintf("%.3fh", rep.WaitP99),
			fmt.Sprintf("%.1f/%d", rep.MeanConcurrency, rep.PeakConcurrency),
			pct(rep.SharedFraction),
			fmt.Sprintf("%d", rep.SysStats.SharedLoads),
			fmt.Sprintf("%d", rep.SysStats.MidRoundJoins),
			fmt.Sprintf("%v", rep.Wall.Round(time.Millisecond)),
		})
	}
	return []*Table{t}, nil
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
% another comment
0 1
1 2 3.5

2 0 2
`
	g, err := ReadEdgeList("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape = %d/%d, want 3/3", g.NumV, g.NumEdges())
	}
	if g.Edges[0].Weight != 1 {
		t.Fatalf("default weight = %v, want 1", g.Edges[0].Weight)
	}
	if g.Edges[1].Weight != 3.5 {
		t.Fatalf("weight = %v, want 3.5", g.Edges[1].Weight)
	}
}

func TestReadEdgeListDensifiesIDs(t *testing.T) {
	in := "1000000 42\n42 99\n"
	g, err := ReadEdgeList("d", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumV != 3 {
		t.Fatalf("numV = %d, want 3 densified vertices", g.NumV)
	}
	// First-seen order: 1000000->0, 42->1, 99->2.
	if g.Edges[0].Src != 0 || g.Edges[0].Dst != 1 || g.Edges[1].Src != 1 || g.Edges[1].Dst != 2 {
		t.Fatalf("densification wrong: %v", g.Edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"justone\n",
		"a b\n",
		"1 b\n",
		"1 2 notaweight\n",
		"",
		"# only comments\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList("bad", strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateUniform("rt", 40, 200, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", back.NumEdges(), g.NumEdges())
	}
	// Weights survive the round trip (IDs may be re-densified, but this
	// generator emits dense IDs already, and first-seen order preserves
	// IDs only if vertex 0 appears first — so compare multisets of
	// weighted degrees instead of raw edges.
	sumW := func(edges []Edge) float64 {
		s := 0.0
		for _, e := range edges {
			s += float64(e.Weight)
		}
		return s
	}
	if sumW(back.Edges) != sumW(g.Edges) {
		t.Fatal("total weight changed in round trip")
	}
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list support (the SNAP / LAW dataset format the paper's Table 2
// graphs are distributed in): one edge per line as
//
//	src dst [weight]
//
// separated by spaces or tabs; '#' and '%' lines are comments. Vertex IDs
// are arbitrary non-negative integers and are densified to [0, NumV) in
// first-seen order, as out-of-core engines do during conversion.

// ReadEdgeList parses a text edge list. Missing weights default to 1.
func ReadEdgeList(name string, r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[uint64]VertexID)
	var edges []Edge
	intern := func(raw uint64) VertexID {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := VertexID(len(ids))
		ids[raw] = v
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: %s:%d: want 'src dst [weight]', got %q", name, lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad source: %w", name, lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad destination: %w", name, lineNo, err)
		}
		w := float32(1)
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: %s:%d: bad weight: %w", name, lineNo, err)
			}
			w = float32(wf)
		}
		edges = append(edges, Edge{Src: intern(src), Dst: intern(dst), Weight: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading %s: %w", name, err)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("graph: %s has no edges", name)
	}
	return New(name, len(ids), edges)
}

// WriteEdgeList emits the graph as a text edge list with weights.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d vertices, %d edges\n", g.Name, g.NumV, g.NumEdges())
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", e.Src, e.Dst, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

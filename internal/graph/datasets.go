package graph

import "sync"

// Dataset presets mirror the five graphs in Table 2 of the paper, scaled down
// so the whole evaluation runs on a laptop in minutes. The *ratios* that drive
// the paper's results are preserved by pairing each preset with a simulated
// memory budget (MemBudget): LiveJ/Orkut/Twitter fit in "memory" while
// UKUnion and Clueweb are out-of-core, exactly as in the paper where
// LiveJ/Orkut/Twitter fit the 32 GB host and UK-union/Clueweb12 do not.

// Preset names, usable with Dataset and the -dataset flag of cmd/graphm-bench.
const (
	PresetLiveJ   = "livej"
	PresetOrkut   = "orkut"
	PresetTwitter = "twitter"
	PresetUKUnion = "uk-union"
	PresetClueweb = "clueweb"
)

// DatasetSpec describes one scaled dataset preset.
type DatasetSpec struct {
	Name string
	NumV int
	NumE int
	Seed int64

	// MemBudget is the simulated main-memory budget (bytes) under which the
	// preset reproduces the paper's in-memory vs out-of-core split.
	MemBudget int64

	// LLCBytes is the simulated last-level-cache size paired with the preset.
	LLCBytes int64

	// OutOfCore reports whether the edge data exceeds MemBudget.
	OutOfCore bool
}

// presets keep the paper's vertex:edge ratios approximately:
// LiveJ 4.8M/69M (~14 e/v), Orkut 3.1M/117M (~38), Twitter 41.7M/1.5B (~35),
// UK-union 133.6M/5.5B (~41), Clueweb12 978M/42.6B (~44).
var presets = map[string]DatasetSpec{
	PresetLiveJ:   {Name: PresetLiveJ, NumV: 2_600, NumE: 36_000, Seed: 11, MemBudget: 12 << 20, LLCBytes: 64 << 10, OutOfCore: false},
	PresetOrkut:   {Name: PresetOrkut, NumV: 1_400, NumE: 52_000, Seed: 12, MemBudget: 16 << 20, LLCBytes: 64 << 10, OutOfCore: false},
	PresetTwitter: {Name: PresetTwitter, NumV: 4_400, NumE: 154_000, Seed: 13, MemBudget: 48 << 20, LLCBytes: 64 << 10, OutOfCore: false},
	PresetUKUnion: {Name: PresetUKUnion, NumV: 7_400, NumE: 300_000, Seed: 14, MemBudget: 1 << 20, LLCBytes: 64 << 10, OutOfCore: true},
	PresetClueweb: {Name: PresetClueweb, NumV: 11_600, NumE: 512_000, Seed: 15, MemBudget: 2 << 21, LLCBytes: 64 << 10, OutOfCore: true},
}

// DatasetNames lists the presets in the paper's Table 2 order.
func DatasetNames() []string {
	return []string{PresetLiveJ, PresetOrkut, PresetTwitter, PresetUKUnion, PresetClueweb}
}

// Spec returns the preset spec; ok is false for unknown names.
func Spec(name string) (DatasetSpec, bool) {
	s, ok := presets[name]
	return s, ok
}

// datasetCache holds each preset graph after its first generation. The
// presets are the synthetic stand-ins for the paper's fixed on-disk
// datasets: regenerating half a million R-MAT edges per experiment run was
// pure overhead, and a Graph is immutable after construction (evolving-graph
// operations are copy-on-write in core's snapshot store), so one shared
// instance per preset is safe for every concurrent consumer.
var (
	datasetMu    sync.Mutex
	datasetCache = make(map[string]*Graph)
)

// Dataset returns the preset graph, generated deterministically on first use
// and cached for the process lifetime. The returned Graph is shared:
// callers must treat it as immutable, which every engine substrate already
// does.
func Dataset(name string) (*Graph, DatasetSpec, error) {
	spec, ok := presets[name]
	if !ok {
		return nil, DatasetSpec{}, errUnknownDataset(name)
	}
	datasetMu.Lock()
	defer datasetMu.Unlock()
	if g, ok := datasetCache[name]; ok {
		return g, spec, nil
	}
	g, err := GenerateRMAT(DefaultRMAT(spec.Name, spec.NumV, spec.NumE, spec.Seed))
	if err != nil {
		return nil, DatasetSpec{}, err
	}
	datasetCache[name] = g
	return g, spec, nil
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return "graph: unknown dataset preset " + string(e)
}

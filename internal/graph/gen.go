package graph

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterises the synthetic generators. All generators are
// deterministic for a given Seed so experiments are reproducible.
type GenConfig struct {
	Name string
	NumV int
	NumE int
	Seed int64

	// R-MAT quadrant probabilities; must sum to ~1. The classic skewed
	// social-network setting is A=0.57, B=0.19, C=0.19, D=0.05.
	A, B, C, D float64

	// MaxWeight bounds edge weights, drawn uniformly from [1, MaxWeight].
	// Zero means unweighted (all weights 1).
	MaxWeight float32
}

// DefaultRMAT returns the skewed R-MAT parameters used throughout the
// benchmarks, approximating the degree skew of social graphs like Twitter.
func DefaultRMAT(name string, numV, numE int, seed int64) GenConfig {
	return GenConfig{
		Name: name, NumV: numV, NumE: numE, Seed: seed,
		A: 0.57, B: 0.19, C: 0.19, D: 0.05, MaxWeight: 64,
	}
}

// GenerateRMAT builds a power-law graph with the recursive-matrix method.
// Self-loops are permitted (real engines tolerate them); duplicate edges are
// permitted as in the raw datasets the paper uses.
func GenerateRMAT(cfg GenConfig) (*Graph, error) {
	if cfg.NumV <= 1 || cfg.NumE <= 0 {
		return nil, fmt.Errorf("graph: invalid generator config %+v", cfg)
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("graph: R-MAT probabilities sum to %v, want 1", sum)
	}
	// Round the vertex count up to a power of two for quadrant recursion,
	// then reject vertices outside the requested range by re-drawing.
	levels := 0
	for 1<<levels < cfg.NumV {
		levels++
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]Edge, 0, cfg.NumE)
	for len(edges) < cfg.NumE {
		src, dst := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: nothing to add
			case r < cfg.A+cfg.B:
				dst |= 1 << l
			case r < cfg.A+cfg.B+cfg.C:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		if src >= cfg.NumV || dst >= cfg.NumV {
			continue
		}
		w := float32(1)
		if cfg.MaxWeight > 1 {
			w = 1 + float32(rng.Intn(int(cfg.MaxWeight)))
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst), Weight: w})
	}
	return New(cfg.Name, cfg.NumV, edges)
}

// GenerateUniform builds an Erdős–Rényi-style random graph: endpoints drawn
// uniformly. Used by property tests as a low-skew contrast to R-MAT.
func GenerateUniform(name string, numV, numE int, seed int64) (*Graph, error) {
	if numV <= 0 || numE < 0 {
		return nil, fmt.Errorf("graph: invalid uniform config v=%d e=%d", numV, numE)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, numE)
	for i := range edges {
		edges[i] = Edge{
			Src:    VertexID(rng.Intn(numV)),
			Dst:    VertexID(rng.Intn(numV)),
			Weight: 1 + float32(rng.Intn(16)),
		}
	}
	return New(name, numV, edges)
}

// GenerateChain builds a deterministic path 0->1->...->numV-1, useful for
// tests whose expected results must be computed by hand.
func GenerateChain(name string, numV int) *Graph {
	edges := make([]Edge, 0, numV-1)
	for v := 0; v < numV-1; v++ {
		edges = append(edges, Edge{Src: VertexID(v), Dst: VertexID(v + 1), Weight: 1})
	}
	return MustNew(name, numV, edges)
}

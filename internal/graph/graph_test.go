package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsOutOfRange(t *testing.T) {
	_, err := New("bad", 4, []Edge{{Src: 0, Dst: 4}})
	if err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	_, err = New("bad", 0, nil)
	if err == nil {
		t.Fatal("expected error for zero vertices")
	}
}

func TestDegrees(t *testing.T) {
	g := MustNew("g", 4, []Edge{{0, 1, 1}, {0, 2, 1}, {1, 2, 1}, {3, 0, 1}})
	out := g.OutDegrees()
	want := []uint32{2, 1, 0, 1}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out-degree of %d = %d, want %d", i, out[i], w)
		}
	}
	in := g.InDegrees()
	wantIn := []uint32{1, 1, 2, 0}
	for i, w := range wantIn {
		if in[i] != w {
			t.Errorf("in-degree of %d = %d, want %d", i, in[i], w)
		}
	}
	v, max := g.MaxOutDegree()
	if v != 0 || max != 2 {
		t.Errorf("MaxOutDegree = (%d,%d), want (0,2)", v, max)
	}
}

func TestCSRMatchesEdgeList(t *testing.T) {
	g, err := GenerateUniform("u", 100, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.BuildCSR()
	total := 0
	for v := 0; v < g.NumV; v++ {
		for _, e := range g.OutEdges(VertexID(v)) {
			if e.Src != VertexID(v) {
				t.Fatalf("CSR edge %v under vertex %d", e, v)
			}
			total++
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("CSR has %d edges, want %d", total, g.NumEdges())
	}
}

func TestRMATGeneratesRequestedEdges(t *testing.T) {
	g, err := GenerateRMAT(DefaultRMAT("r", 1024, 5000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5000 {
		t.Fatalf("edges = %d, want 5000", g.NumEdges())
	}
	if g.NumV != 1024 {
		t.Fatalf("numV = %d, want 1024", g.NumV)
	}
	// R-MAT with skewed quadrants should be heavy-tailed: the max out-degree
	// far exceeds the average.
	_, max := g.MaxOutDegree()
	if float64(max) < 4*g.Statistics().AvgOutDegree {
		t.Errorf("max out-degree %d not skewed vs avg %.2f", max, g.Statistics().AvgOutDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := GenerateRMAT(DefaultRMAT("a", 256, 1000, 42))
	b, _ := GenerateRMAT(DefaultRMAT("b", 256, 1000, 42))
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between identical seeds", i)
		}
	}
}

func TestRMATRejectsBadProbabilities(t *testing.T) {
	cfg := DefaultRMAT("x", 64, 100, 1)
	cfg.A = 0.9
	if _, err := GenerateRMAT(cfg); err == nil {
		t.Fatal("expected error for probabilities not summing to 1")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	g, err := GenerateUniform("rt", 50, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumV != g.NumV || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", got.NumV, got.NumEdges(), g.NumV, g.NumEdges())
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d: %v != %v", i, g.Edges[i], got.Edges[i])
		}
	}
}

func TestCodecRejectsCorruptHeader(t *testing.T) {
	if _, err := ReadGraph("x", bytes.NewReader([]byte("NOPE00000000000000000000"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestEncodeDecodeEdgesProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := make([]Edge, int(n))
		for i := range edges {
			edges[i] = Edge{
				Src:    uint32(rng.Intn(1000)),
				Dst:    uint32(rng.Intn(1000)),
				Weight: float32(rng.Intn(100)) + 1,
			}
		}
		blob := EncodeEdges(edges)
		back, err := DecodeEdges(blob)
		if err != nil || len(back) != len(edges) {
			return false
		}
		for i := range edges {
			if edges[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEdgesRejectsBadLength(t *testing.T) {
	if _, err := DecodeEdges(make([]byte, 13)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSortedByDst(t *testing.T) {
	g := MustNew("s", 4, []Edge{{3, 2, 1}, {1, 0, 1}, {2, 2, 1}, {0, 1, 1}})
	s := g.SortedByDst()
	for i := 1; i < len(s); i++ {
		if s[i].Dst < s[i-1].Dst {
			t.Fatalf("not sorted by dst at %d: %v after %v", i, s[i], s[i-1])
		}
	}
	// Original untouched — the cached sorted view is a separate slice.
	if g.Edges[0].Src != 3 || g.Edges[1].Src != 1 || g.Edges[2].Src != 2 || g.Edges[3].Src != 0 {
		t.Fatal("SortedByDst mutated the original edge list")
	}
	// Second call returns the same cached backing array (built once), still
	// sorted, and still leaves the original untouched.
	s2 := g.SortedByDst()
	if &s2[0] != &s[0] {
		t.Fatal("SortedByDst rebuilt the sorted view instead of caching it")
	}
	if g.Edges[0].Src != 3 {
		t.Fatal("second SortedByDst call mutated the original edge list")
	}
}

func TestDatasetPresets(t *testing.T) {
	for _, name := range DatasetNames() {
		g, spec, err := Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumEdges() != spec.NumE {
			t.Errorf("%s: edges %d, want %d", name, g.NumEdges(), spec.NumE)
		}
		if spec.OutOfCore != (g.SizeBytes() > spec.MemBudget) {
			t.Errorf("%s: OutOfCore=%v inconsistent with size %d vs budget %d",
				name, spec.OutOfCore, g.SizeBytes(), spec.MemBudget)
		}
	}
	if _, _, err := Dataset("nonsense"); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
}

func TestGenerateChain(t *testing.T) {
	g := GenerateChain("c", 5)
	if g.NumEdges() != 4 {
		t.Fatalf("chain edges = %d, want 4", g.NumEdges())
	}
	for i, e := range g.Edges {
		if int(e.Src) != i || int(e.Dst) != i+1 {
			t.Fatalf("edge %d = %v", i, e)
		}
	}
}

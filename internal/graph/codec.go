package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary edge-file format ("GMEF"): a fixed header followed by 12-byte edge
// records. This is the neutral on-"disk" representation that cmd/graphm-prep
// converts into each engine's native layout, mirroring the Convert() step of
// the paper's graph preprocessor.
//
//	offset 0: magic "GMEF"
//	offset 4: uint32 version (1)
//	offset 8: uint32 numV
//	offset 12: uint64 numE
//	offset 20: numE records of (uint32 src, uint32 dst, float32 weight)

const (
	codecMagic   = "GMEF"
	codecVersion = 1
	headerSize   = 20
)

// WriteTo serialises the graph in GMEF format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(codecMagic); err != nil {
		return n, err
	}
	n += 4
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.NumV))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += 16
	var rec [EdgeSize]byte
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		binary.LittleEndian.PutUint32(rec[8:], floatBits(e.Weight))
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += EdgeSize
	}
	return n, bw.Flush()
}

// ReadGraph parses a GMEF stream.
func ReadGraph(name string, r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: short header: %w", err)
	}
	if string(hdr[:4]) != codecMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != codecVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	numV := int(binary.LittleEndian.Uint32(hdr[8:]))
	numE := binary.LittleEndian.Uint64(hdr[12:])
	edges := make([]Edge, 0, numE)
	var rec [EdgeSize]byte
	for i := uint64(0); i < numE; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: short edge %d: %w", i, err)
		}
		edges = append(edges, Edge{
			Src:    binary.LittleEndian.Uint32(rec[0:]),
			Dst:    binary.LittleEndian.Uint32(rec[4:]),
			Weight: bitsFloat(binary.LittleEndian.Uint32(rec[8:])),
		})
	}
	return New(name, numV, edges)
}

// EncodeEdges packs a slice of edges into the raw 12-byte-per-edge layout the
// storage substrate stores as partition blobs.
func EncodeEdges(edges []Edge) []byte {
	buf := make([]byte, len(edges)*EdgeSize)
	for i, e := range edges {
		off := i * EdgeSize
		binary.LittleEndian.PutUint32(buf[off:], e.Src)
		binary.LittleEndian.PutUint32(buf[off+4:], e.Dst)
		binary.LittleEndian.PutUint32(buf[off+8:], floatBits(e.Weight))
	}
	return buf
}

// DecodeEdges is the inverse of EncodeEdges.
func DecodeEdges(buf []byte) ([]Edge, error) {
	if len(buf)%EdgeSize != 0 {
		return nil, fmt.Errorf("graph: blob length %d not a multiple of %d", len(buf), EdgeSize)
	}
	edges := make([]Edge, len(buf)/EdgeSize)
	for i := range edges {
		off := i * EdgeSize
		edges[i] = Edge{
			Src:    binary.LittleEndian.Uint32(buf[off:]),
			Dst:    binary.LittleEndian.Uint32(buf[off+4:]),
			Weight: bitsFloat(binary.LittleEndian.Uint32(buf[off+8:])),
		}
	}
	return edges, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }

// Package graph provides the in-memory graph model shared by every engine
// substrate in this repository: edges, adjacency (CSR) construction, degree
// statistics, and a compact binary edge-file codec.
//
// The model is deliberately engine-neutral. GridGraph re-partitions edges
// into a 2-D grid, GraphChi into destination-sorted shards, PowerGraph into
// vertex-cut CSR/CSC, and Chaos into flat edge lists; all of them start from
// the Graph type defined here.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a vertex. Vertices are dense integers in [0, NumVertices).
type VertexID = uint32

// Edge is a directed, weighted edge. Weight is used by SSSP; unweighted
// algorithms ignore it.
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float32
}

// EdgeSize is the in-memory footprint of one Edge in bytes, used by the chunk
// sizing formula and the LLC simulator.
const EdgeSize = 12

// Graph is an immutable directed graph held as an edge list plus lazily built
// adjacency indexes.
type Graph struct {
	Name  string
	NumV  int
	Edges []Edge

	// Lazily built indexes; the sync.Once guards make concurrent jobs
	// binding to the same shared graph safe.
	outDegOnce sync.Once
	outDeg     []uint32
	inDegOnce  sync.Once
	inDeg      []uint32

	// CSR (out-edges) built on demand by BuildCSR.
	csrOnce  sync.Once
	csrIndex []uint64
	csrEdges []Edge

	// Destination-sorted edge view built on demand by SortedByDst.
	dstOnce   sync.Once
	dstSorted []Edge
}

// New creates a graph from an edge list. Edges with endpoints outside
// [0, numV) are rejected.
func New(name string, numV int, edges []Edge) (*Graph, error) {
	if numV <= 0 {
		return nil, fmt.Errorf("graph: numV must be positive, got %d", numV)
	}
	for i, e := range edges {
		if int(e.Src) >= numV || int(e.Dst) >= numV {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, numV)
		}
	}
	return &Graph{Name: name, NumV: numV, Edges: edges}, nil
}

// MustNew is New, panicking on error. Intended for tests and generators whose
// inputs are valid by construction.
func MustNew(name string, numV int, edges []Edge) *Graph {
	g, err := New(name, numV, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// SizeBytes returns the edge-list footprint in bytes, the quantity the paper
// calls S_G in Formula (1).
func (g *Graph) SizeBytes() int64 { return int64(len(g.Edges)) * EdgeSize }

// OutDegrees returns the out-degree array, computing it on first use.
// Safe for concurrent callers.
func (g *Graph) OutDegrees() []uint32 {
	g.outDegOnce.Do(func() {
		d := make([]uint32, g.NumV)
		for _, e := range g.Edges {
			d[e.Src]++
		}
		g.outDeg = d
	})
	return g.outDeg
}

// InDegrees returns the in-degree array, computing it on first use.
// Safe for concurrent callers.
func (g *Graph) InDegrees() []uint32 {
	g.inDegOnce.Do(func() {
		d := make([]uint32, g.NumV)
		for _, e := range g.Edges {
			d[e.Dst]++
		}
		g.inDeg = d
	})
	return g.inDeg
}

// MaxOutDegree returns the maximum out-degree and the vertex attaining it.
func (g *Graph) MaxOutDegree() (VertexID, uint32) {
	var best VertexID
	var max uint32
	for v, d := range g.OutDegrees() {
		if d > max {
			max = d
			best = VertexID(v)
		}
	}
	return best, max
}

// BuildCSR builds the out-edge CSR index used by PowerGraph-style engines and
// by reference algorithm implementations. It is idempotent and safe for
// concurrent callers.
func (g *Graph) BuildCSR() {
	g.csrOnce.Do(func() {
		deg := g.OutDegrees()
		index := make([]uint64, g.NumV+1)
		for v := 0; v < g.NumV; v++ {
			index[v+1] = index[v] + uint64(deg[v])
		}
		sorted := make([]Edge, len(g.Edges))
		next := make([]uint64, g.NumV)
		copy(next, index[:g.NumV])
		for _, e := range g.Edges {
			sorted[next[e.Src]] = e
			next[e.Src]++
		}
		g.csrIndex = index
		g.csrEdges = sorted
	})
}

// OutEdges returns the out-edges of v. BuildCSR must have been called.
func (g *Graph) OutEdges(v VertexID) []Edge {
	if g.csrIndex == nil {
		panic("graph: OutEdges called before BuildCSR")
	}
	return g.csrEdges[g.csrIndex[v]:g.csrIndex[v+1]]
}

// ErrNoEdges is returned by operations that need a non-empty edge set.
var ErrNoEdges = errors.New("graph: graph has no edges")

// SortedByDst returns the edge list sorted by (Dst, Src); GraphChi shards
// are built from this order. The sorted view is computed once (the copy and
// full sort used to be paid on every call — once per GraphChi build) and
// cached for the graph's lifetime, so the returned slice is shared and
// immutable by contract: callers must not modify it. The original Edges
// order is never touched. Safe for concurrent callers.
func (g *Graph) SortedByDst() []Edge {
	g.dstOnce.Do(func() {
		out := make([]Edge, len(g.Edges))
		copy(out, g.Edges)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Dst != out[j].Dst {
				return out[i].Dst < out[j].Dst
			}
			return out[i].Src < out[j].Src
		})
		g.dstSorted = out
	})
	return g.dstSorted
}

// Stats summarises a graph for reports and dataset tables.
type Stats struct {
	Name         string
	NumV         int
	NumE         int
	SizeBytes    int64
	MaxOutDegree uint32
	AvgOutDegree float64
}

// Statistics computes summary statistics.
func (g *Graph) Statistics() Stats {
	_, max := g.MaxOutDegree()
	avg := 0.0
	if g.NumV > 0 {
		avg = float64(len(g.Edges)) / float64(g.NumV)
	}
	return Stats{
		Name:         g.Name,
		NumV:         g.NumV,
		NumE:         len(g.Edges),
		SizeBytes:    g.SizeBytes(),
		MaxOutDegree: max,
		AvgOutDegree: avg,
	}
}

package jobs

import (
	"math/rand"
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/trace"
)

func TestNewProgramKnownAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, a := range []string{"pagerank", "wcc", "bfs", "sssp"} {
		p := NewProgram(a, rng)
		if p.Name() != a {
			t.Errorf("NewProgram(%q).Name() = %q", a, p.Name())
		}
	}
}

func TestNewProgramUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown algorithm")
		}
	}()
	NewProgram("quicksort", rand.New(rand.NewSource(1)))
}

func TestRotationCyclesAlgorithms(t *testing.T) {
	w := Rotation(8, 1)
	if len(w.Jobs) != 8 {
		t.Fatalf("jobs = %d, want 8", len(w.Jobs))
	}
	for i, j := range w.Jobs {
		want := trace.Algorithms[i%len(trace.Algorithms)]
		if j.Prog.Name() != want {
			t.Errorf("job %d runs %q, want %q", i, j.Prog.Name(), want)
		}
		if j.ID != i+1 {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestRotationDeterministic(t *testing.T) {
	g, _ := graph.GenerateUniform("d", 100, 400, 5)
	run := func() []uint32 {
		w := Rotation(4, 9)
		b := w.Jobs[3] // bfs
		b.Bind(g)
		return b.Prog.(*algorithms.BFS).Dist()
	}
	_ = run
	w1, w2 := Rotation(4, 9), Rotation(4, 9)
	b1, b2 := w1.Jobs[3].Prog.(*algorithms.BFS), w2.Jobs[3].Prog.(*algorithms.BFS)
	w1.Jobs[3].Bind(g)
	w2.Jobs[3].Bind(g)
	if b1.Root != b2.Root {
		t.Fatalf("same seed produced different roots: %d vs %d", b1.Root, b2.Root)
	}
}

func TestPoissonDelaysIncrease(t *testing.T) {
	w := Poisson(10, 4, time.Millisecond, 3)
	prev := time.Duration(-1)
	for i, d := range w.Delay {
		if d <= prev {
			t.Fatalf("delay %d not increasing: %v after %v", i, d, prev)
		}
		prev = d
	}
}

func TestPoissonHigherLambdaDenser(t *testing.T) {
	slow := Poisson(16, 2, time.Millisecond, 3)
	fast := Poisson(16, 16, time.Millisecond, 3)
	if fast.Delay[15] >= slow.Delay[15] {
		t.Fatalf("lambda=16 span %v not denser than lambda=2 span %v",
			fast.Delay[15], slow.Delay[15])
	}
}

func TestFromTraceRespectsLimitAndDelays(t *testing.T) {
	tr := trace.Generate(24, 5)
	w := FromTrace(tr, 10, time.Millisecond)
	if len(w.Jobs) != 10 {
		t.Fatalf("jobs = %d, want 10", len(w.Jobs))
	}
	for i := range w.Jobs {
		want := time.Duration(tr.Events[i].AtHour * float64(time.Millisecond))
		if w.Delay[i] != want {
			t.Fatalf("delay %d = %v, want %v", i, w.Delay[i], want)
		}
	}
}

func TestHopConstrainedRootsWithinHops(t *testing.T) {
	g, _ := graph.GenerateRMAT(graph.DefaultRMAT("h", 500, 4000, 7))
	centre, _ := g.MaxOutDegree()
	dist := algorithms.ReferenceBFS(g, centre)
	for hops := 1; hops <= 3; hops++ {
		w := HopConstrained("bfs", 8, g, centre, hops, 11)
		for i, j := range w.Jobs {
			root := j.Prog.(*algorithms.BFS).Root
			if dist[root] == algorithms.Unreached || int(dist[root]) > hops {
				t.Fatalf("hops=%d job %d root %d at distance %d", hops, i, root, dist[root])
			}
		}
	}
}

func TestHopConstrainedSSSP(t *testing.T) {
	g, _ := graph.GenerateUniform("s", 200, 1000, 3)
	w := HopConstrained("sssp", 4, g, 0, 2, 5)
	for _, j := range w.Jobs {
		if j.Prog.Name() != "sssp" {
			t.Fatalf("got %q", j.Prog.Name())
		}
	}
}

// recordingSubmitter captures submission order and times.
type recordingSubmitter struct {
	ids   []int
	times []time.Time
}

func (r *recordingSubmitter) Submit(j *engine.Job) {
	r.ids = append(r.ids, j.ID)
	r.times = append(r.times, time.Now())
}
func (r *recordingSubmitter) Wait() error { return nil }

func TestRunWorkloadHonoursDelays(t *testing.T) {
	w := &Workload{}
	for i := 0; i < 3; i++ {
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, algorithms.NewBFS(0), int64(i)))
		w.Delay = append(w.Delay, time.Duration(i)*10*time.Millisecond)
	}
	rec := &recordingSubmitter{}
	start := time.Now()
	if err := RunWorkload(w, rec, 1.0); err != nil {
		t.Fatal(err)
	}
	if len(rec.ids) != 3 {
		t.Fatalf("submitted %d jobs", len(rec.ids))
	}
	if got := rec.times[2].Sub(start); got < 15*time.Millisecond {
		t.Fatalf("third submission after %v, want >= ~20ms", got)
	}
	// TimeScale 0 disables sleeping entirely.
	rec2 := &recordingSubmitter{}
	start = time.Now()
	if err := RunWorkload(w, rec2, 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("TimeScale 0 should not sleep")
	}
}

// Package jobs builds the concurrent-job workloads of the paper's
// evaluation (Section 5.1): WCC, PageRank, SSSP and BFS submitted in turn
// with randomised parameters, either all at once, sequentially, or with
// Poisson(λ) inter-arrival times; plus replay of the social-network trace.
package jobs

import (
	"math/rand"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/trace"
)

// Workload is a reproducible batch of jobs with submission offsets.
type Workload struct {
	Jobs []*engine.Job
	// Delay[i] is the submission offset of Jobs[i] from workload start.
	Delay []time.Duration
}

// NewProgram instantiates a benchmark algorithm by name with randomised
// parameters drawn from rng (Section 5.1: random damping, random roots,
// random iteration budgets). Beyond the paper's four-job rotation it also
// covers the extended fallback set (k-core, label propagation, PPR) used by
// the per-algorithm scenario and benchmark suites.
func NewProgram(algo string, rng *rand.Rand) engine.Program {
	switch algo {
	case "pagerank":
		return algorithms.NewPageRank(0, 10) // damping randomised at Reset
	case "wcc":
		return algorithms.NewWCC(0) // budget randomised at Reset
	case "bfs":
		return algorithms.NewRandomBFS()
	case "sssp":
		return algorithms.NewRandomSSSP()
	case "kcore":
		return algorithms.NewKCore(0) // k drawn from [2,8] at Reset
	case "labelprop":
		return algorithms.NewLabelPropagation(0) // budget randomised at Reset
	case "ppr":
		return algorithms.NewRandomPPR()
	default:
		panic("jobs: unknown algorithm " + algo)
	}
}

// Rotation returns n jobs cycling WCC, PageRank, SSSP, BFS — the paper's
// submission rotation — with deterministic per-job seeds.
func Rotation(n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < n; i++ {
		algo := trace.Algorithms[i%len(trace.Algorithms)]
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, NewProgram(algo, rng), rng.Int63()))
		w.Delay = append(w.Delay, 0)
	}
	return w
}

// RotationOf returns n jobs all running the named algorithm (used by the
// scaling experiments, e.g. Figure 19's 16 PageRank jobs).
func RotationOf(algo string, n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < n; i++ {
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, NewProgram(algo, rng), rng.Int63()))
		w.Delay = append(w.Delay, 0)
	}
	return w
}

// Poisson assigns Poisson(λ jobs per unit) inter-arrival delays to a
// rotation of n jobs; unit is the simulated duration of one arrival window
// (the paper uses λ=16 by default).
func Poisson(n int, lambda float64, unit time.Duration, seed int64) *Workload {
	w := Rotation(n, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	at := 0.0
	for i := range w.Jobs {
		at += rng.ExpFloat64() / lambda
		w.Delay[i] = time.Duration(at * float64(unit))
	}
	return w
}

// FromTrace converts trace events into a workload; hourScale maps one trace
// hour onto simulated wall time.
func FromTrace(tr *trace.Trace, maxJobs int, hourScale time.Duration) *Workload {
	w := &Workload{}
	for i, e := range tr.Events {
		if maxJobs > 0 && i >= maxJobs {
			break
		}
		rng := rand.New(rand.NewSource(e.Seed))
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, NewProgram(e.Algo, rng), e.Seed))
		w.Delay = append(w.Delay, time.Duration(e.AtHour*float64(hourScale)))
	}
	return w
}

// HopConstrained returns n BFS (or SSSP) jobs whose roots all lie within
// maxHops of a common centre vertex — the Figure 17 workload studying how
// root proximity strengthens access similarity.
func HopConstrained(algo string, n int, g *graph.Graph, centre graph.VertexID, maxHops int, seed int64) *Workload {
	dist := algorithms.ReferenceBFS(g, centre)
	var candidates []graph.VertexID
	for v, d := range dist {
		if d != algorithms.Unreached && int(d) <= maxHops {
			candidates = append(candidates, graph.VertexID(v))
		}
	}
	if len(candidates) == 0 {
		candidates = []graph.VertexID{centre}
	}
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < n; i++ {
		root := candidates[rng.Intn(len(candidates))]
		var prog engine.Program
		if algo == "sssp" {
			prog = algorithms.NewSSSP(root)
		} else {
			prog = algorithms.NewBFS(root)
		}
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, prog, rng.Int63()))
		w.Delay = append(w.Delay, 0)
	}
	return w
}

// Submitter abstracts the three execution schemes over any engine: the
// bench harness passes closures wrapping GridGraph-S, -C and -M.
type Submitter interface {
	// Submit starts a job (possibly immediately running it to completion,
	// as the sequential scheme does).
	Submit(j *engine.Job)
	// Wait blocks until all submitted jobs finish and returns any error.
	Wait() error
}

// RunWorkload submits every job of w through s, honouring delays scaled by
// timeScale (0 disables delays entirely — all jobs submitted immediately).
func RunWorkload(w *Workload, s Submitter, timeScale float64) error {
	start := time.Now()
	for i, j := range w.Jobs {
		if timeScale > 0 && w.Delay[i] > 0 {
			target := time.Duration(float64(w.Delay[i]) * timeScale)
			if sleep := target - time.Since(start); sleep > 0 {
				time.Sleep(sleep)
			}
		}
		s.Submit(j)
	}
	return s.Wait()
}

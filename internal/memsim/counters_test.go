package memsim

import (
	"sync"
	"testing"
)

func TestCountersConcurrentUpdates(t *testing.T) {
	c, err := NewCache(DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	var ctrs [4]Counters
	var wg sync.WaitGroup
	const perJob = 2000
	for j := 0; j < 4; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			base := uint64(j) << 30
			for i := 0; i < perJob; i++ {
				c.Touch(base+uint64(i)*LineSize, &ctrs[j])
			}
		}(j)
	}
	wg.Wait()
	var hits, misses uint64
	for j := range ctrs {
		if got := ctrs[j].Instructions.Load(); got != perJob {
			t.Fatalf("job %d instructions = %d, want %d", j, got, perJob)
		}
		hits += ctrs[j].Hits.Load()
		misses += ctrs[j].Misses.Load()
	}
	if hits != c.TotalHits() || misses != c.TotalMisses() {
		t.Fatalf("per-job sums (%d/%d) disagree with cache totals (%d/%d)",
			hits, misses, c.TotalHits(), c.TotalMisses())
	}
}

func TestDistinctRegionsInterfere(t *testing.T) {
	// Two working sets that each fit the cache alone, but not together,
	// interleaved: both should suffer — the cache-interference effect of
	// the paper's Figure 3(c).
	cfg := Config{SizeBytes: 16 << 10, Ways: 8}
	alone, _ := NewCache(cfg)
	var actr Counters
	size := uint64(12 << 10)
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < size; off += LineSize {
			alone.Touch(off, &actr)
		}
	}

	together, _ := NewCache(cfg)
	var t1, t2 Counters
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < size; off += LineSize {
			together.Touch(off, &t1)
			together.Touch(1<<30+off, &t2)
		}
	}
	if t1.MissRate() <= actr.MissRate() {
		t.Fatalf("interleaved miss rate %.3f not above solo %.3f", t1.MissRate(), actr.MissRate())
	}
}

func TestLPIZeroInstructions(t *testing.T) {
	var c Counters
	if c.LPI() != 0 || c.MissRate() != 0 {
		t.Fatal("zero-instruction counters should report 0")
	}
}

package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// dedupEntries folds a raw access stream into per-line aggregates the way
// the engine's collection loop does: one BatchEntry per distinct line with
// its access count and first/last batch-global positions.
func dedupEntries(addrs []uint64) []BatchEntry {
	idx := map[uint64]int{}
	var entries []BatchEntry
	for i, a := range addrs {
		line := a / LineSize
		if k, ok := idx[line]; ok {
			entries[k].Count++
			entries[k].Last = uint32(i)
			continue
		}
		idx[line] = len(entries)
		entries = append(entries, BatchEntry{Line: line, Count: 1, First: uint32(i), Last: uint32(i)})
	}
	return entries
}

// TestTouchEntriesEquivalence is the property the aggregate state phase
// rests on: pricing a batch from per-line aggregates (TouchEntries), or
// from the same aggregates grouped once and replayed (GroupEntries +
// TouchGrouped), is observably equivalent to touching the raw addresses one
// by one in program order — same counters, same final LRU behavior. When a
// set-group's distinct lines exceed the ways, TouchEntries must refuse
// without mutating anything and GroupEntries must refuse identically, so
// the twin stays in sync by applying the raw batch instead.
func TestTouchEntriesEquivalence(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, Ways: 4} // 16 sets: conflicts are common
	f := func(seed int64, batchSizes []uint8) bool {
		if len(batchSizes) == 0 {
			return true
		}
		inOrder, err := NewCache(cfg)
		if err != nil {
			return false
		}
		entried, _ := NewCache(cfg)
		grouped, _ := NewCache(cfg)
		rng := rand.New(rand.NewSource(seed))
		var inCtr, entCtr, grpCtr Counters
		var entTally, grpTally Tally
		var entSc, grpSc BatchScratch
		for _, bs := range batchSizes {
			n := int(bs%97) + 1
			addrs := make([]uint64, n)
			for i := range addrs {
				// Zipf-ish skew plus enough spread that some batches carry
				// more distinct lines per set than the cache has ways,
				// exercising the refusal path.
				if rng.Intn(3) == 0 {
					addrs[i] = uint64(rng.Intn(8)) * LineSize
				} else {
					addrs[i] = uint64(rng.Intn(1 << 14))
				}
			}
			for _, a := range addrs {
				inOrder.Touch(a, &inCtr)
			}
			entries := dedupEntries(addrs)
			if !entried.TouchEntries(entries, uint64(n), &entSc, &entTally) {
				entried.TouchBatch(addrs, &entSc, &entTally)
			}
			if g, ok := grouped.GroupEntries(entries, &grpSc); ok {
				grouped.TouchGrouped(&g, uint64(n), &grpTally)
			} else {
				grouped.TouchBatch(addrs, &grpSc, &grpTally)
			}
		}
		entried.FlushTally(entTally, &entCtr, 0)
		grouped.FlushTally(grpTally, &grpCtr, 0)
		for _, ctr := range []*Counters{&entCtr, &grpCtr} {
			if inCtr.Hits.Load() != ctr.Hits.Load() ||
				inCtr.Misses.Load() != ctr.Misses.Load() ||
				inCtr.Instructions.Load() != ctr.Instructions.Load() {
				return false
			}
		}
		if inOrder.TotalHits() != entried.TotalHits() || inOrder.TotalMisses() != entried.TotalMisses() ||
			inOrder.TotalHits() != grouped.TotalHits() || inOrder.TotalMisses() != grouped.TotalMisses() {
			return false
		}
		// Behavioral LRU probe: any divergence in resident tags or victim
		// ordering left behind by the replay shows up as a miss mismatch on
		// a fresh conflicting stream.
		for i := 0; i < 1024; i++ {
			addr := uint64(rng.Intn(1 << 14))
			m := inOrder.Touch(addr, nil)
			if m != entried.Touch(addr, nil) || m != grouped.Touch(addr, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTouchEntriesOverflowRefusesWithoutMutation pins the refusal contract:
// a batch with more distinct lines in one set than the cache has ways must
// return false from both TouchEntries and GroupEntries, count nothing, and
// leave every set untouched so the caller's raw-stream fallback starts from
// exact state.
func TestTouchEntriesOverflowRefusesWithoutMutation(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, Ways: 4} // 16 sets
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	twin, _ := NewCache(cfg)
	// Warm both caches identically so refusal-after-warmth is covered.
	for i := 0; i < 64; i++ {
		addr := uint64(i%11) * 64 * 16 // all in set 0
		c.Touch(addr, nil)
		twin.Touch(addr, nil)
	}
	// 5 distinct lines of set 0 > 4 ways: must refuse.
	var entries []BatchEntry
	for i := 0; i < 5; i++ {
		entries = append(entries, BatchEntry{Line: uint64(i * 16), Count: 2, First: uint32(2 * i), Last: uint32(2*i + 1)})
	}
	var sc BatchScratch
	var tally Tally
	if c.TouchEntries(entries, 10, &sc, &tally) {
		t.Fatal("TouchEntries accepted a set-group wider than the ways")
	}
	if _, ok := c.GroupEntries(entries, &sc); ok {
		t.Fatal("GroupEntries accepted a set-group wider than the ways")
	}
	if tally.Accesses() != 0 {
		t.Fatalf("refused batch still tallied %d accesses", tally.Accesses())
	}
	// The refused cache must behave exactly like the untouched twin.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 512; i++ {
		addr := uint64(rng.Intn(1 << 14))
		if c.Touch(addr, nil) != twin.Touch(addr, nil) {
			t.Fatalf("refusal mutated cache state (diverged at probe %d)", i)
		}
	}
}

// TestTouchEntriesEmpty pins the degenerate case.
func TestTouchEntriesEmpty(t *testing.T) {
	c, err := NewCache(Config{SizeBytes: 8 << 10, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sc BatchScratch
	var tally Tally
	if !c.TouchEntries(nil, 0, &sc, &tally) {
		t.Fatal("empty entry batch refused")
	}
	g, ok := c.GroupEntries(nil, &sc)
	if !ok || len(g.Eg) != 0 {
		t.Fatal("empty grouping refused or non-empty")
	}
	c.TouchGrouped(&g, 0, &tally)
	if tally.Accesses() != 0 || c.TotalHits()+c.TotalMisses() != 0 {
		t.Fatalf("empty batches counted accesses: tally=%+v", tally)
	}
}

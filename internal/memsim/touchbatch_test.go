package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTouchBatchEquivalence is the property the set-major state batching
// rests on: applying an access sequence with TouchBatch — grouped by cache
// set, one lock acquisition per group, each set's own accesses kept in
// program order — is observably equivalent to touching the addresses one by
// one in program order. Each set's automaton consumes only its own
// subsequence, which the grouping preserves, so every access's hit/miss
// outcome and every set's final LRU state must match bit for bit. The
// address distribution is skewed (power-law-ish hubs over a small cache) so
// batches carry the repeated lines and evictions the hot path sees.
func TestTouchBatchEquivalence(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, Ways: 4} // 16 sets: conflicts are common
	f := func(seed int64, batchSizes []uint8) bool {
		if len(batchSizes) == 0 {
			return true
		}
		inOrder, err := NewCache(cfg)
		if err != nil {
			return false
		}
		batched, _ := NewCache(cfg)
		rng := rand.New(rand.NewSource(seed))
		var inCtr, batCtr Counters
		var tally Tally
		var sc BatchScratch
		for _, bs := range batchSizes {
			n := int(bs%97) + 1
			addrs := make([]uint64, n)
			for i := range addrs {
				// Zipf-ish skew: a few hub lines dominate, like vertex state
				// lines of power-law graphs.
				if rng.Intn(3) == 0 {
					addrs[i] = uint64(rng.Intn(8)) * LineSize
				} else {
					addrs[i] = uint64(rng.Intn(1 << 14))
				}
			}
			for _, a := range addrs {
				inOrder.Touch(a, &inCtr)
			}
			batched.TouchBatch(addrs, &sc, &tally)
		}
		batched.FlushTally(tally, &batCtr, 0)
		if inCtr.Hits.Load() != batCtr.Hits.Load() ||
			inCtr.Misses.Load() != batCtr.Misses.Load() ||
			inCtr.Instructions.Load() != batCtr.Instructions.Load() {
			return false
		}
		if inOrder.TotalHits() != batched.TotalHits() ||
			inOrder.TotalMisses() != batched.TotalMisses() {
			return false
		}
		// Behavioral LRU probe: any divergence in resident tags or victim
		// ordering left behind by the replay shows up as a miss mismatch on
		// a fresh conflicting stream.
		for i := 0; i < 1024; i++ {
			addr := uint64(rng.Intn(1 << 14))
			if inOrder.Touch(addr, nil) != batched.Touch(addr, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTouchBatchEmpty pins the degenerate cases: an empty batch touches
// nothing and a scratch is reusable across caches of different geometry.
func TestTouchBatchEmpty(t *testing.T) {
	c, err := NewCache(Config{SizeBytes: 8 << 10, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sc BatchScratch
	var tally Tally
	c.TouchBatch(nil, &sc, &tally)
	if tally.Accesses() != 0 || c.TotalHits()+c.TotalMisses() != 0 {
		t.Fatalf("empty batch counted accesses: tally=%+v", tally)
	}
	c.TouchBatch([]uint64{0, 64, 0}, &sc, &tally)
	if got := tally.Accesses(); got != 3 {
		t.Fatalf("batch of 3 accounted %d accesses", got)
	}
	// A bigger cache must resize the scratch's per-set counters transparently.
	big, err := NewCache(Config{SizeBytes: 64 << 10, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	big.TouchBatch([]uint64{0, 1 << 13, 64}, &sc, &tally)
	if got := tally.Accesses(); got != 6 {
		t.Fatalf("cumulative tally accounted %d accesses, want 6", got)
	}
}

// TestShardedTotalsSum checks that Touch and FlushTally land in the sharded
// cache-wide totals and that the read side sums every shard regardless of
// which slot a flush picked.
func TestShardedTotalsSum(t *testing.T) {
	c, err := NewCache(Config{SizeBytes: 8 << 10, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Touch(uint64(i)*LineSize, nil) // 100 distinct lines: all miss
	}
	for shard := 0; shard < 130; shard++ { // exercise wraparound past 64
		c.FlushTally(Tally{Hits: 2, Misses: 1}, nil, shard)
	}
	if got := c.TotalMisses(); got != 100+130 {
		t.Fatalf("TotalMisses = %d, want %d", got, 230)
	}
	if got := c.TotalHits(); got != 260 {
		t.Fatalf("TotalHits = %d, want %d", got, 260)
	}
	c.Reset()
	if c.TotalHits() != 0 || c.TotalMisses() != 0 {
		t.Fatal("Reset left sharded totals non-zero")
	}
}

package memsim

import (
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(Config{SizeBytes: 1024, Ways: 0}); err == nil {
		t.Fatal("expected error for zero ways")
	}
	if _, err := NewCache(Config{SizeBytes: 64, Ways: 16}); err == nil {
		t.Fatal("expected error for cache smaller than one set")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := NewCache(DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	var ctr Counters
	if miss := c.Touch(0, &ctr); !miss {
		t.Fatal("first touch should miss")
	}
	if miss := c.Touch(8, &ctr); miss {
		t.Fatal("second touch of same line should hit")
	}
	if ctr.Hits.Load() != 1 || ctr.Misses.Load() != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 1/1", ctr.Hits.Load(), ctr.Misses.Load())
	}
	if ctr.LPI() != 0.5 {
		t.Fatalf("LPI = %v, want 0.5", ctr.LPI())
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	// 2-way cache with enough size for a few sets.
	c, err := NewCache(Config{SizeBytes: 4 * 64 * 2, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	sets := c.numSets
	// Three distinct lines mapping to set 0.
	a := uint64(0)
	b := sets * LineSize
	d := 2 * sets * LineSize
	c.Touch(a, nil) // miss, resident {a}
	c.Touch(b, nil) // miss, resident {a,b}
	c.Touch(d, nil) // miss, evicts a (LRU)
	if miss := c.Touch(b, nil); miss {
		t.Fatal("b should still be resident")
	}
	if miss := c.Touch(a, nil); !miss {
		t.Fatal("a should have been evicted")
	}
}

func TestWorkingSetSmallerThanCacheNeverEvicts(t *testing.T) {
	c, err := NewCache(DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	lines := c.SizeBytes() / LineSize / 2 // half capacity
	for pass := 0; pass < 3; pass++ {
		for l := int64(0); l < lines; l++ {
			miss := c.Touch(uint64(l*LineSize), nil)
			if pass > 0 && miss {
				t.Fatalf("pass %d line %d missed; working set fits", pass, l)
			}
		}
	}
	if got, want := c.TotalMisses(), uint64(lines); got != want {
		t.Fatalf("misses = %d, want %d cold misses", got, want)
	}
}

func TestTouchRangeCountsLines(t *testing.T) {
	c, _ := NewCache(DefaultConfig(64 << 10))
	misses := c.TouchRange(0, 256, nil) // 4 lines
	if misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
	if c.SwappedBytes() != 4*LineSize {
		t.Fatalf("swapped = %d, want %d", c.SwappedBytes(), 4*LineSize)
	}
	// Unaligned range crossing a line boundary.
	c.Reset()
	misses = c.TouchRange(60, 8, nil) // spans lines 0 and 1
	if misses != 2 {
		t.Fatalf("misses = %d, want 2", misses)
	}
}

func TestResetClears(t *testing.T) {
	c, _ := NewCache(DefaultConfig(64 << 10))
	c.Touch(0, nil)
	c.Reset()
	if c.TotalMisses() != 0 || c.TotalHits() != 0 {
		t.Fatal("counters not reset")
	}
	if !c.Touch(0, nil) {
		t.Fatal("contents not reset; touch should miss")
	}
}

func TestMissRateBounds(t *testing.T) {
	// Property: miss rate is always within [0,1] and hits+misses equals the
	// number of touches.
	f := func(addrs []uint16) bool {
		c, err := NewCache(Config{SizeBytes: 8 << 10, Ways: 4})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Touch(uint64(a), nil)
		}
		if c.TotalHits()+c.TotalMisses() != uint64(len(addrs)) {
			return false
		}
		r := c.MissRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedVsPrivateAddressStreams(t *testing.T) {
	// The core claim behind GraphM's LLC benefit: two jobs scanning the
	// *same* address range miss half as often as two jobs scanning two
	// disjoint copies of equal total size larger than the cache.
	cfg := Config{SizeBytes: 32 << 10, Ways: 8}
	streamLen := uint64(64 << 10) // 2× cache size

	shared, _ := NewCache(cfg)
	// Job A then job B over the same addresses, chunk by chunk so reuse is
	// temporal (as GraphM's chunk synchronization arranges).
	chunkB := uint64(8 << 10)
	for off := uint64(0); off < streamLen; off += chunkB {
		shared.TouchRange(off, chunkB, nil) // job A
		shared.TouchRange(off, chunkB, nil) // job B reuses
	}

	private, _ := NewCache(cfg)
	for off := uint64(0); off < streamLen; off += chunkB {
		private.TouchRange(off, chunkB, nil)       // job A copy 1
		private.TouchRange(1<<30+off, chunkB, nil) // job B copy 2
	}

	if shared.TotalMisses() >= private.TotalMisses() {
		t.Fatalf("shared stream misses %d, private %d; sharing should miss less",
			shared.TotalMisses(), private.TotalMisses())
	}
}

package memsim_test

import (
	"testing"

	"graphm/internal/chunk"
	"graphm/internal/memsim"
)

// This file verifies, at the cache-model level, the mechanism adaptive chunk
// re-labelling relies on (Formula 1 of the paper): a chunk sized for the
// jobs *actually* sharing a partition survives in the LLC across the
// FineSync leader/follower lockstep, while a chunk sized for a stale, lower
// concurrency is evicted by the extra jobs' vertex state before the late
// followers re-stream it. Symmetrically, when concurrency drops back to the
// sized-for level, the follower miss rate recovers.

const (
	llcBytes   = 64 << 10
	reserved   = llcBytes / 8
	partBytes  = 256 << 10 // one partition's edge stream, 4x the LLC
	stateBytes = 4 << 10   // per-job vertex data footprint (|V| * U_v)
)

// sizeFor is Formula (1) for n concurrent jobs over this file's geometry.
func sizeFor(t *testing.T, n int) int64 {
	t.Helper()
	sc, err := chunk.ChunkSize(chunk.SizeParams{
		NumCores:  n,
		LLCBytes:  llcBytes,
		GraphSize: partBytes,
		NumV:      stateBytes / 8,
		VertexPay: 8,
		Reserved:  reserved,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// streamPass replays one partition's chunk-synchronized stream for nJobs
// under the FineSync lockstep — leader first, then each follower — touching
// two job-state lines per graph line, the access shape of
// engine.Job.ApplyChunk. It returns the followers' aggregate miss rate (the
// leaders' misses are compulsory whatever the chunk size; sharing pays off,
// or fails to, in the follower passes).
func streamPass(t *testing.T, chunkBytes int64, nJobs int) float64 {
	t.Helper()
	cache, err := memsim.NewCache(memsim.DefaultConfig(llcBytes))
	if err != nil {
		t.Fatal(err)
	}
	ctrs := make([]memsim.Counters, nJobs)
	const graphBase = 0
	stateBase := func(j int) uint64 { return uint64(1<<32 + j*(1<<24)) }
	lcg := uint64(12345)
	nextState := func() uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % uint64(stateBytes/memsim.LineSize)
	}
	var followers memsim.Counters
	for off := int64(0); off < partBytes; off += chunkBytes {
		end := off + chunkBytes
		if end > partBytes {
			end = partBytes
		}
		for j := 0; j < nJobs; j++ {
			ctr := &ctrs[j]
			if j > 0 {
				ctr = &followers
			}
			for line := off / memsim.LineSize; line < (end+memsim.LineSize-1)/memsim.LineSize; line++ {
				cache.Touch(graphBase+uint64(line)*memsim.LineSize, ctr)
				cache.Touch(stateBase(j)+nextState()*memsim.LineSize, ctr)
				cache.Touch(stateBase(j)+nextState()*memsim.LineSize, ctr)
			}
		}
	}
	return followers.MissRate()
}

func TestChunkSizingGovernsFollowerMissRate(t *testing.T) {
	staleSize := sizeFor(t, 2)  // labelled when 2 jobs shared the partition
	rightSize := sizeFor(t, 12) // re-labelled for the 12 jobs actually attending
	if staleSize <= rightSize*2 {
		t.Fatalf("geometry broken: stale %d not meaningfully larger than right-sized %d", staleSize, rightSize)
	}

	staleAt12 := streamPass(t, staleSize, 12)
	relabelledAt12 := streamPass(t, rightSize, 12)
	staleAt2 := streamPass(t, staleSize, 2)

	// Rising concurrency with a stale labelling thrashes; re-labelling for
	// the true N restores follower reuse.
	if relabelledAt12 >= staleAt12/2 {
		t.Fatalf("re-labelling did not help at 12 jobs: stale miss rate %.4f, re-labelled %.4f",
			staleAt12, relabelledAt12)
	}
	// When concurrency drops back to the N the stale labelling assumed, the
	// miss rate improves on its own — which is why core's hysteresis may
	// keep a labelling whose drift stays under the factor.
	if staleAt2 >= staleAt12/2 {
		t.Fatalf("miss rate did not improve when concurrency dropped: 12 jobs %.4f, 2 jobs %.4f",
			staleAt12, staleAt2)
	}
	// And the re-labelled configuration is roughly as healthy as the
	// correctly-sized low-concurrency one.
	if relabelledAt12 > 3*staleAt2 {
		t.Fatalf("re-labelled 12-job miss rate %.4f far above the healthy baseline %.4f", relabelledAt12, staleAt2)
	}
}

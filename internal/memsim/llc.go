// Package memsim simulates the last-level cache (LLC) of the paper's testbed.
//
// The paper's evaluation measures LLC misses, LLC miss rate, misses per
// instruction (LPI), and the volume of data swapped into the LLC (Figures 3,
// 13, 14). Those were read from hardware performance counters on a Xeon with
// a 20 MB LLC. Go offers no portable, deterministic access to such counters,
// and the GC would pollute them anyway, so this package replays the engines'
// memory-access streams through a set-associative LRU cache model and counts
// the same events. The substitution preserves the comparison the paper makes:
// the same access streams that would thrash a real LLC thrash the model.
package memsim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LineSize is the simulated cache-line size in bytes.
const LineSize = 64

// Config describes a simulated LLC.
type Config struct {
	// SizeBytes is the total cache capacity. The paper's machine has 20 MB;
	// the dataset presets pair scaled-down sizes with scaled-down graphs.
	SizeBytes int64
	// Ways is the set associativity. 16 matches contemporary Xeon LLCs.
	Ways int
}

// DefaultConfig returns a 16-way cache of the given size.
func DefaultConfig(sizeBytes int64) Config { return Config{SizeBytes: sizeBytes, Ways: 16} }

// Counters aggregates per-job access statistics.
type Counters struct {
	Hits         atomic.Uint64
	Misses       atomic.Uint64
	Instructions atomic.Uint64
}

// LPI returns LLC misses per instruction, the metric of Figure 3(c).
func (c *Counters) LPI() float64 {
	ins := c.Instructions.Load()
	if ins == 0 {
		return 0
	}
	return float64(c.Misses.Load()) / float64(ins)
}

// MissRate returns misses / (hits+misses), the metric of Figure 13.
func (c *Counters) MissRate() float64 {
	h, m := c.Hits.Load(), c.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Cache is a shared, set-associative, LRU-replacement cache model. Addresses
// are abstract byte addresses in a flat simulated physical space; callers
// derive them from (region base + offset). Cache is safe for concurrent use;
// each set is locked independently so parallel jobs contend realistically.
type Cache struct {
	ways    int
	numSets uint64
	// setShift is log2(numSets): tags are line >> setShift, avoiding a
	// variable-divisor division on every access of the hot path.
	setShift uint
	sets     []cacheSet

	totalMisses atomic.Uint64
	totalHits   atomic.Uint64
}

type cacheSet struct {
	mu    sync.Mutex
	tags  []uint64 // tag per way; 0 means empty (tag values are shifted to avoid 0)
	clock []uint64 // LRU timestamps
	tick  uint64
}

// NewCache builds a cache from cfg. SizeBytes is rounded down to a power-of-
// two number of sets; a cache smaller than one set is rejected.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("memsim: ways must be positive, got %d", cfg.Ways)
	}
	lines := cfg.SizeBytes / LineSize
	sets := lines / int64(cfg.Ways)
	if sets <= 0 {
		return nil, fmt.Errorf("memsim: cache of %d bytes too small for %d ways", cfg.SizeBytes, cfg.Ways)
	}
	// Round down to a power of two for cheap indexing.
	p := uint64(1)
	shift := uint(0)
	for p*2 <= uint64(sets) {
		p *= 2
		shift++
	}
	c := &Cache{ways: cfg.Ways, numSets: p, setShift: shift, sets: make([]cacheSet, p)}
	for i := range c.sets {
		c.sets[i].tags = make([]uint64, cfg.Ways)
		c.sets[i].clock = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// SizeBytes reports the modelled capacity.
func (c *Cache) SizeBytes() int64 {
	return int64(c.numSets) * int64(c.ways) * LineSize
}

// Tally is a local, unsynchronized accumulator of hit/miss counts. The
// batched hot path (TouchRun) tallies accesses here instead of bumping the
// shared atomics per access, and FlushTally folds a whole chunk's deltas
// into the cache-wide totals and a job's Counters with one atomic add per
// counter. A Tally must not be shared between goroutines without external
// synchronization.
type Tally struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the number of accesses the tally has accounted.
func (t Tally) Accesses() uint64 { return t.Hits + t.Misses }

// Add accumulates other into t.
func (t *Tally) Add(other Tally) {
	t.Hits += other.Hits
	t.Misses += other.Misses
}

// Touch simulates a load of one cache line containing addr, updating ctr (if
// non-nil) and the cache-wide counters. It reports whether the access missed.
func (c *Cache) Touch(addr uint64, ctr *Counters) bool {
	line := addr / LineSize
	set := &c.sets[line&(c.numSets-1)]
	tag := line>>c.setShift + 1 // +1 so that 0 marks an empty way

	set.mu.Lock()
	set.tick++
	tick := set.tick
	for w, t := range set.tags {
		if t == tag {
			set.clock[w] = tick
			set.mu.Unlock()
			c.totalHits.Add(1)
			if ctr != nil {
				ctr.Hits.Add(1)
				ctr.Instructions.Add(1)
			}
			return false
		}
	}
	victim := set.evictLocked()
	set.tags[victim] = tag
	set.clock[victim] = tick
	set.mu.Unlock()

	c.totalMisses.Add(1)
	if ctr != nil {
		ctr.Misses.Add(1)
		ctr.Instructions.Add(1)
	}
	return true
}

// evictLocked picks the LRU way. Split out of the tag scan so the common
// case (a hit) never pays the clock comparisons.
func (s *cacheSet) evictLocked() int {
	victim := 0
	oldest := s.clock[0]
	for w := 1; w < len(s.clock); w++ {
		if s.clock[w] < oldest {
			oldest = s.clock[w]
			victim = w
		}
	}
	return victim
}

// TouchRun simulates n >= 1 back-to-back loads of the single cache line
// containing addr under one set-lock acquisition. The first access resolves
// hit-or-miss exactly as Touch does; the remaining n-1 are hits by
// construction — the line was just referenced and no other access can
// intervene while the set is locked. The set's LRU state afterwards is
// bit-identical to n consecutive Touch calls on the same line (the set clock
// advances by n and the line's stamp lands on the final tick), which is what
// lets the run-length hot path stand in for the per-edge model: see the
// equivalence property test and the scenario harness's sim-counter
// invariant.
//
// Counts accumulate into t without touching the shared atomics; callers
// flush them in batch with FlushTally. TouchRun reports whether the first
// access missed.
func (c *Cache) TouchRun(addr, n uint64, t *Tally) bool {
	if n == 0 {
		return false
	}
	line := addr / LineSize
	set := &c.sets[line&(c.numSets-1)]
	tag := line>>c.setShift + 1

	set.mu.Lock()
	set.tick += n
	tick := set.tick
	for w, tg := range set.tags {
		if tg == tag {
			set.clock[w] = tick
			set.mu.Unlock()
			t.Hits += n
			return false
		}
	}
	victim := set.evictLocked()
	set.tags[victim] = tag
	set.clock[victim] = tick
	set.mu.Unlock()

	t.Misses++
	t.Hits += n - 1
	return true
}

// FlushTally folds a batch of tallied accesses into the cache-wide totals
// and into ctr (if non-nil), with one atomic add per counter — the batched
// equivalent of the per-access updates Touch performs. The hot path calls it
// once per applied chunk.
func (c *Cache) FlushTally(t Tally, ctr *Counters) {
	if t.Hits != 0 {
		c.totalHits.Add(t.Hits)
	}
	if t.Misses != 0 {
		c.totalMisses.Add(t.Misses)
	}
	if ctr == nil {
		return
	}
	if t.Hits != 0 {
		ctr.Hits.Add(t.Hits)
	}
	if t.Misses != 0 {
		ctr.Misses.Add(t.Misses)
	}
	if n := t.Hits + t.Misses; n != 0 {
		ctr.Instructions.Add(n)
	}
}

// TouchRange simulates a sequential scan of [addr, addr+n) and reports the
// number of line misses. Used for bulk edge streaming.
func (c *Cache) TouchRange(addr, n uint64, ctr *Counters) int {
	if n == 0 {
		return 0
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	misses := 0
	for l := first; l <= last; l++ {
		if c.Touch(l*LineSize, ctr) {
			misses++
		}
	}
	return misses
}

// TotalMisses returns the cache-wide miss count. Multiplying by LineSize
// gives the volume of data swapped into the LLC (Figure 14).
func (c *Cache) TotalMisses() uint64 { return c.totalMisses.Load() }

// TotalHits returns the cache-wide hit count.
func (c *Cache) TotalHits() uint64 { return c.totalHits.Load() }

// SwappedBytes returns the total bytes loaded into the cache.
func (c *Cache) SwappedBytes() uint64 { return c.TotalMisses() * LineSize }

// MissRate returns the cache-wide miss rate.
func (c *Cache) MissRate() float64 {
	h, m := c.TotalHits(), c.TotalMisses()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Reset clears contents and counters. Not safe concurrently with Touch.
func (c *Cache) Reset() {
	for i := range c.sets {
		s := &c.sets[i]
		for w := range s.tags {
			s.tags[w] = 0
			s.clock[w] = 0
		}
		s.tick = 0
	}
	c.totalHits.Store(0)
	c.totalMisses.Store(0)
}

// Package memsim simulates the last-level cache (LLC) of the paper's testbed.
//
// The paper's evaluation measures LLC misses, LLC miss rate, misses per
// instruction (LPI), and the volume of data swapped into the LLC (Figures 3,
// 13, 14). Those were read from hardware performance counters on a Xeon with
// a 20 MB LLC. Go offers no portable, deterministic access to such counters,
// and the GC would pollute them anyway, so this package replays the engines'
// memory-access streams through a set-associative LRU cache model and counts
// the same events. The substitution preserves the comparison the paper makes:
// the same access streams that would thrash a real LLC thrash the model.
package memsim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LineSize is the simulated cache-line size in bytes.
const LineSize = 64

// Config describes a simulated LLC.
type Config struct {
	// SizeBytes is the total cache capacity. The paper's machine has 20 MB;
	// the dataset presets pair scaled-down sizes with scaled-down graphs.
	SizeBytes int64
	// Ways is the set associativity. 16 matches contemporary Xeon LLCs.
	Ways int
}

// DefaultConfig returns a 16-way cache of the given size.
func DefaultConfig(sizeBytes int64) Config { return Config{SizeBytes: sizeBytes, Ways: 16} }

// Counters aggregates per-job access statistics.
type Counters struct {
	Hits         atomic.Uint64
	Misses       atomic.Uint64
	Instructions atomic.Uint64
}

// LPI returns LLC misses per instruction, the metric of Figure 3(c).
func (c *Counters) LPI() float64 {
	ins := c.Instructions.Load()
	if ins == 0 {
		return 0
	}
	return float64(c.Misses.Load()) / float64(ins)
}

// MissRate returns misses / (hits+misses), the metric of Figure 13.
func (c *Counters) MissRate() float64 {
	h, m := c.Hits.Load(), c.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Cache is a shared, set-associative, LRU-replacement cache model. Addresses
// are abstract byte addresses in a flat simulated physical space; callers
// derive them from (region base + offset). Cache is safe for concurrent use;
// each set is locked independently so parallel jobs contend realistically.
type Cache struct {
	ways    int
	numSets uint64
	sets    []cacheSet

	totalMisses atomic.Uint64
	totalHits   atomic.Uint64
}

type cacheSet struct {
	mu    sync.Mutex
	tags  []uint64 // tag per way; 0 means empty (tag values are shifted to avoid 0)
	clock []uint64 // LRU timestamps
	tick  uint64
}

// NewCache builds a cache from cfg. SizeBytes is rounded down to a power-of-
// two number of sets; a cache smaller than one set is rejected.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("memsim: ways must be positive, got %d", cfg.Ways)
	}
	lines := cfg.SizeBytes / LineSize
	sets := lines / int64(cfg.Ways)
	if sets <= 0 {
		return nil, fmt.Errorf("memsim: cache of %d bytes too small for %d ways", cfg.SizeBytes, cfg.Ways)
	}
	// Round down to a power of two for cheap indexing.
	p := uint64(1)
	for p*2 <= uint64(sets) {
		p *= 2
	}
	c := &Cache{ways: cfg.Ways, numSets: p, sets: make([]cacheSet, p)}
	for i := range c.sets {
		c.sets[i].tags = make([]uint64, cfg.Ways)
		c.sets[i].clock = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// SizeBytes reports the modelled capacity.
func (c *Cache) SizeBytes() int64 {
	return int64(c.numSets) * int64(c.ways) * LineSize
}

// Touch simulates a load of one cache line containing addr, updating ctr (if
// non-nil) and the cache-wide counters. It reports whether the access missed.
func (c *Cache) Touch(addr uint64, ctr *Counters) bool {
	line := addr / LineSize
	set := &c.sets[line&(c.numSets-1)]
	tag := line/c.numSets + 1 // +1 so that 0 marks an empty way

	set.mu.Lock()
	set.tick++
	tick := set.tick
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w, t := range set.tags {
		if t == tag {
			set.clock[w] = tick
			set.mu.Unlock()
			c.totalHits.Add(1)
			if ctr != nil {
				ctr.Hits.Add(1)
				ctr.Instructions.Add(1)
			}
			return false
		}
		if set.clock[w] < oldest {
			oldest = set.clock[w]
			victim = w
		}
	}
	set.tags[victim] = tag
	set.clock[victim] = tick
	set.mu.Unlock()

	c.totalMisses.Add(1)
	if ctr != nil {
		ctr.Misses.Add(1)
		ctr.Instructions.Add(1)
	}
	return true
}

// TouchRange simulates a sequential scan of [addr, addr+n) and reports the
// number of line misses. Used for bulk edge streaming.
func (c *Cache) TouchRange(addr, n uint64, ctr *Counters) int {
	if n == 0 {
		return 0
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	misses := 0
	for l := first; l <= last; l++ {
		if c.Touch(l*LineSize, ctr) {
			misses++
		}
	}
	return misses
}

// TotalMisses returns the cache-wide miss count. Multiplying by LineSize
// gives the volume of data swapped into the LLC (Figure 14).
func (c *Cache) TotalMisses() uint64 { return c.totalMisses.Load() }

// TotalHits returns the cache-wide hit count.
func (c *Cache) TotalHits() uint64 { return c.totalHits.Load() }

// SwappedBytes returns the total bytes loaded into the cache.
func (c *Cache) SwappedBytes() uint64 { return c.TotalMisses() * LineSize }

// MissRate returns the cache-wide miss rate.
func (c *Cache) MissRate() float64 {
	h, m := c.TotalHits(), c.TotalMisses()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Reset clears contents and counters. Not safe concurrently with Touch.
func (c *Cache) Reset() {
	for i := range c.sets {
		s := &c.sets[i]
		for w := range s.tags {
			s.tags[w] = 0
			s.clock[w] = 0
		}
		s.tick = 0
	}
	c.totalHits.Store(0)
	c.totalMisses.Store(0)
}

// Package memsim simulates the last-level cache (LLC) of the paper's testbed.
//
// The paper's evaluation measures LLC misses, LLC miss rate, misses per
// instruction (LPI), and the volume of data swapped into the LLC (Figures 3,
// 13, 14). Those were read from hardware performance counters on a Xeon with
// a 20 MB LLC. Go offers no portable, deterministic access to such counters,
// and the GC would pollute them anyway, so this package replays the engines'
// memory-access streams through a set-associative LRU cache model and counts
// the same events. The substitution preserves the comparison the paper makes:
// the same access streams that would thrash a real LLC thrash the model.
//
// The model is a product of independent per-set automata: each set carries
// its own lock, tick and LRU state, and an access only ever reads or writes
// the state of the one set its line maps to. Two consequences the hot path
// exploits: accesses to different sets commute (reordering a stream across
// sets, while preserving each set's own subsequence, changes no per-access
// outcome — TouchBatch rests on this, and the property test proves it), and
// there is no cache-global state to contend on per access — the cache-wide
// hit/miss totals are sharded (per set for Touch, per flushed tally for the
// batched path) and only summed when read.
package memsim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// LineSize is the simulated cache-line size in bytes.
const LineSize = 64

// MaxWays bounds the associativity so each set's tag and LRU-clock arrays
// can live inline in the set (no pointer chase on the hot path). 16 matches
// contemporary Xeon LLCs; NewCache rejects higher values.
const MaxWays = 16

// Config describes a simulated LLC.
type Config struct {
	// SizeBytes is the total cache capacity. The paper's machine has 20 MB;
	// the dataset presets pair scaled-down sizes with scaled-down graphs.
	SizeBytes int64
	// Ways is the set associativity. 16 matches contemporary Xeon LLCs.
	Ways int
}

// DefaultConfig returns a 16-way cache of the given size.
func DefaultConfig(sizeBytes int64) Config { return Config{SizeBytes: sizeBytes, Ways: 16} }

// Counters aggregates per-job access statistics.
type Counters struct {
	Hits         atomic.Uint64
	Misses       atomic.Uint64
	Instructions atomic.Uint64
}

// LPI returns LLC misses per instruction, the metric of Figure 3(c).
func (c *Counters) LPI() float64 {
	ins := c.Instructions.Load()
	if ins == 0 {
		return 0
	}
	return float64(c.Misses.Load()) / float64(ins)
}

// MissRate returns misses / (hits+misses), the metric of Figure 13.
func (c *Counters) MissRate() float64 {
	h, m := c.Hits.Load(), c.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// tallyShards is the number of shards the cache-wide hit/miss totals are
// split across. Shard selection only balances load (Touch uses the set
// index, FlushTally a caller-supplied slot); the sum over shards is the
// total either way.
const tallyShards = 64

// tallyShard is one padded slot of the sharded cache-wide totals. The
// padding keeps two shards off one hardware cache line, so concurrent
// workers flushing different shards never false-share.
type tallyShard struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [48]byte
}

// Cache is a shared, set-associative, LRU-replacement cache model. Addresses
// are abstract byte addresses in a flat simulated physical space; callers
// derive them from (region base + offset). Cache is safe for concurrent use;
// each set is locked independently so parallel jobs contend realistically.
type Cache struct {
	ways    int
	numSets uint64
	// setShift is log2(numSets): tags are line >> setShift, avoiding a
	// variable-divisor division on every access of the hot path.
	setShift uint
	sets     []cacheSet

	// locks spinlock-protects the sets, one lock per lockSpan consecutive
	// sets. Coarser-than-set locking costs nothing in correctness (a lock
	// still serializes every access to the sets it covers) and lets the
	// sequential scan of a chunk's edge lines — consecutive lines, hence
	// consecutive sets — amortize one atomic acquire over up to lockSpan
	// line touches instead of paying a CAS per line.
	locks []lockShard

	// shards holds the cache-wide hit/miss totals, sharded so no two
	// concurrent streamers contend on a single atomic word. TotalHits and
	// TotalMisses sum them on read.
	shards [tallyShards]tallyShard
}

// lockSpanShift gives lockSpan = 16 sets per lock shard: small enough that
// concurrent streamers over different regions rarely collide, large enough
// that a sequential line scan acquires ~1/16th the locks.
const lockSpanShift = 4

// cacheSet is one set's complete state, inline (no pointer chase). Ways are
// kept in most-recently-used-first order (a hit or fill moves the way to
// slot 0), so the tag scan of a skewed access stream usually terminates at
// w0 — tick and w0 share the set's first real cache line. The remaining
// ways are stored as separate tag and clock planes: a deep tag scan and the
// miss path's full victim scan each stream one contiguous array instead of
// striding over interleaved pairs. Way positions are internal — eviction
// picks the minimum clock wherever it sits — so the ordering games are
// invisible to the model.
type cacheSet struct {
	tick uint64
	w0   cacheWay            // way 0 (MRU) inline: the shallow probe reads one line
	tags [MaxWays - 1]uint64 // ways 1..15 tags, contiguous: the deep scan streams them
	clks [MaxWays - 1]uint64 // ways 1..15 clocks, contiguous: so does the victim scan
	_    [56]byte            // pad to 320B so sets stay line-aligned in the array
}

// cacheWay is the MRU way's inline tag/clock pair (the deeper ways live in
// cacheSet's split planes).
type cacheWay struct {
	tag   uint64 // 0 means empty (tags are shifted to avoid 0)
	clock uint64 // LRU timestamp
}

// lockShard is one padded spinlock covering lockSpan consecutive sets.
type lockShard struct {
	lock atomic.Uint32
	_    [60]byte
}

// lockOf returns the lock shard guarding setIdx.
func (c *Cache) lockOf(setIdx uint64) *lockShard { return &c.locks[setIdx>>lockSpanShift] }

// acquire takes the shard's spinlock. The critical section is a handful of
// nanoseconds (a few tag scans) and never blocks, so spinning beats parking;
// the occasional Gosched keeps a constrained GOMAXPROCS from livelocking.
func (l *lockShard) acquire() {
	for !l.lock.CompareAndSwap(0, 1) {
		spins := 0
		for l.lock.Load() != 0 {
			spins++
			if spins >= 64 {
				runtime.Gosched()
				spins = 0
			}
		}
	}
}

func (l *lockShard) release() { l.lock.Store(0) }

// NewCache builds a cache from cfg. SizeBytes is rounded down to a power-of-
// two number of sets; a cache smaller than one set is rejected.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("memsim: ways must be positive, got %d", cfg.Ways)
	}
	if cfg.Ways > MaxWays {
		return nil, fmt.Errorf("memsim: ways must be <= %d, got %d", MaxWays, cfg.Ways)
	}
	lines := cfg.SizeBytes / LineSize
	sets := lines / int64(cfg.Ways)
	if sets <= 0 {
		return nil, fmt.Errorf("memsim: cache of %d bytes too small for %d ways", cfg.SizeBytes, cfg.Ways)
	}
	// Round down to a power of two for cheap indexing.
	p := uint64(1)
	shift := uint(0)
	for p*2 <= uint64(sets) {
		p *= 2
		shift++
	}
	nLocks := (p + (1 << lockSpanShift) - 1) >> lockSpanShift
	if nLocks == 0 {
		nLocks = 1
	}
	return &Cache{ways: cfg.Ways, numSets: p, setShift: shift,
		sets: make([]cacheSet, p), locks: make([]lockShard, nLocks)}, nil
}

// SizeBytes reports the modelled capacity.
func (c *Cache) SizeBytes() int64 {
	return int64(c.numSets) * int64(c.ways) * LineSize
}

// Tally is a local, unsynchronized accumulator of hit/miss counts. The
// batched hot path (TouchRun, TouchBatch) tallies accesses here instead of
// bumping the shared counters per access, and FlushTally folds a whole
// chunk's deltas into the cache-wide totals and a job's Counters with one
// atomic add per counter. A Tally must not be shared between goroutines
// without external synchronization.
type Tally struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns the number of accesses the tally has accounted.
func (t Tally) Accesses() uint64 { return t.Hits + t.Misses }

// Add accumulates other into t.
func (t *Tally) Add(other Tally) {
	t.Hits += other.Hits
	t.Misses += other.Misses
}

// touchLocked performs one access to the line with the given tag on a set
// whose lock is held, returning whether it missed. Hits and fills move the
// way to slot 0 (MRU-first ordering), so repeated lines resolve on the first
// probe.
func (s *cacheSet) touchLocked(tag uint64, ways int) bool {
	s.tick++
	tick := s.tick
	if s.w0.tag == tag {
		s.w0.clock = tick
		return false
	}
	n := ways - 1
	for w := 0; w < n; w++ {
		if s.tags[w] == tag {
			s.tags[w], s.clks[w] = s.w0.tag, s.w0.clock
			s.w0 = cacheWay{tag: tag, clock: tick}
			return false
		}
	}
	victim := -1
	oldest := s.w0.clock
	for w := 0; w < n; w++ {
		if s.clks[w] < oldest {
			oldest = s.clks[w]
			victim = w
		}
	}
	if victim >= 0 {
		s.tags[victim], s.clks[victim] = s.w0.tag, s.w0.clock
	}
	s.w0 = cacheWay{tag: tag, clock: tick}
	return true
}

// Touch simulates a load of one cache line containing addr, updating ctr (if
// non-nil) and the cache-wide counters. It reports whether the access missed.
func (c *Cache) Touch(addr uint64, ctr *Counters) bool {
	line := addr / LineSize
	setIdx := line & (c.numSets - 1)
	set := &c.sets[setIdx]
	tag := line>>c.setShift + 1 // +1 so that 0 marks an empty way

	l := c.lockOf(setIdx)
	l.acquire()
	miss := set.touchLocked(tag, c.ways)
	l.release()

	shard := &c.shards[setIdx&(tallyShards-1)]
	if miss {
		shard.misses.Add(1)
	} else {
		shard.hits.Add(1)
	}
	if ctr != nil {
		if miss {
			ctr.Misses.Add(1)
		} else {
			ctr.Hits.Add(1)
		}
		ctr.Instructions.Add(1)
	}
	return miss
}

// TouchRun simulates n >= 1 back-to-back loads of the single cache line
// containing addr under one set-lock acquisition. The first access resolves
// hit-or-miss exactly as Touch does; the remaining n-1 are hits by
// construction — the line was just referenced and no other access can
// intervene while the set is locked. The set's LRU state afterwards is
// bit-identical to n consecutive Touch calls on the same line (the set clock
// advances by n and the line's stamp lands on the final tick), which is what
// lets the run-length hot path stand in for the per-edge model: see the
// equivalence property test and the scenario harness's sim-counter
// invariant.
//
// Counts accumulate into t without touching the shared counters; callers
// flush them in batch with FlushTally. TouchRun reports whether the first
// access missed.
func (c *Cache) TouchRun(addr, n uint64, t *Tally) bool {
	if n == 0 {
		return false
	}
	line := addr / LineSize
	setIdx := line & (c.numSets - 1)
	set := &c.sets[setIdx]
	tag := line>>c.setShift + 1

	l := c.lockOf(setIdx)
	l.acquire()
	set.tick += n - 1
	miss := set.touchLocked(tag, c.ways)
	l.release()

	if miss {
		t.Misses++
		t.Hits += n - 1
	} else {
		t.Hits += n
	}
	return miss
}

// ScanChunk prices the stream phase of one chunk: nEdges records of
// edgeSize bytes stored contiguously from baseAddr + firstEdge*edgeSize,
// walked in storage order one 64B line-run at a time — exactly the sequence
// of TouchRun calls the engine used to issue per line, fused so consecutive
// lines (hence consecutive sets) sharing a lock shard are priced under one
// acquisition instead of one per line.
func (c *Cache) ScanChunk(baseAddr uint64, firstEdge, nEdges int, edgeSize uint64, t *Tally) {
	if nEdges <= 0 {
		return
	}
	mask := c.numSets - 1
	var hits, misses uint64
	var cur *lockShard
	for i := 0; i < nEdges; {
		addr := baseAddr + uint64(firstEdge+i)*edgeSize
		line := addr / LineSize
		run := i + int(((line+1)*LineSize-addr+edgeSize-1)/edgeSize)
		if run > nEdges {
			run = nEdges
		}
		setIdx := line & mask
		if sh := c.lockOf(setIdx); sh != cur {
			if cur != nil {
				cur.release()
			}
			cur = sh
			cur.acquire()
		}
		set := &c.sets[setIdx]
		tag := line>>c.setShift + 1
		tick := set.tick + uint64(run-i)
		if set.w0.tag == tag {
			// MRU hit on the first probe — the overwhelmingly common case
			// once a chunk's lines are warm — inlined to skip the call.
			set.tick = tick
			set.w0.clock = tick
			hits += uint64(run - i)
		} else {
			set.tick = tick - 1
			if set.touchLocked(tag, c.ways) {
				misses++
				hits += uint64(run-i) - 1
			} else {
				hits += uint64(run - i)
			}
		}
		i = run
	}
	if cur != nil {
		cur.release()
	}
	t.Hits += hits
	t.Misses += misses
}

// BatchScratch holds the reusable grouping buffers TouchBatch needs. One
// scratch serves one streaming goroutine (the engine keeps one per job —
// only one chunk of a job is ever in flight); buffers grow to the high-water
// mark once and are reused, so steady-state batch accounting allocates
// nothing.
type BatchScratch struct {
	counts   []uint32     // per cache set: access count, then scatter cursor; all-zero between calls
	touched  []uint32     // distinct set indices in first-touch order
	grouped  []uint64     // addrs reordered set-major
	egrouped []BatchEntry // entries reordered set-major (TouchEntries)
}

// BatchEntry aggregates one distinct line's accesses within a batch: how
// many raw accesses hit the line, and the batch-global positions (0-based)
// of the first and the last. A caller that already walks its access stream
// (the engine's chunk-apply does, to collect addresses) can dedup into
// entries on the fly and hand TouchEntries ~8x fewer elements than the raw
// stream — the hub-vertex skew of power-law graphs concentrates a chunk's
// state accesses onto few lines.
type BatchEntry struct {
	Line  uint64 // line number, addr / LineSize
	Count uint32 // raw accesses to the line in this batch
	First uint32 // batch-global position of the first access
	Last  uint32 // batch-global position of the last access
}

// TouchBatch simulates the access sequence addrs — arbitrary lines, in
// program order — applying it set-major: addrs are grouped by cache set
// (groups in first-touch order, each set's own accesses kept in program
// order) and each group is resolved under a single set-lock acquisition.
//
// Because each set's automaton consumes only its own subsequence, which the
// grouping preserves, every access's hit/miss outcome and every set's final
// LRU state are bit-identical to touching addrs one by one in program order
// (TestTouchBatchEquivalence proves it). What changes is purely the lock
// economy: one acquisition per (batch, set) instead of one per access — the
// chunk-apply hot path measures ~17 state accesses per group on the skewed
// power-law workloads, so the per-access synchronization cost all but
// vanishes.
//
// Counts accumulate into t; callers flush them with FlushTally.
func (c *Cache) TouchBatch(addrs []uint64, sc *BatchScratch, t *Tally) {
	if len(addrs) == 0 {
		return
	}
	mask := c.numSets - 1
	if uint64(len(sc.counts)) < c.numSets {
		sc.counts = make([]uint32, c.numSets)
	}
	counts := sc.counts
	touched := sc.touched[:0]
	for _, a := range addrs {
		s := uint32((a / LineSize) & mask)
		if counts[s] == 0 {
			touched = append(touched, s)
		}
		counts[s]++
	}
	if cap(sc.grouped) < len(addrs) {
		sc.grouped = make([]uint64, len(addrs))
	}
	grouped := sc.grouped[:len(addrs)]
	// Prefix sums over the touched sets turn counts into scatter cursors;
	// groups are laid out contiguously in first-touch order.
	off := uint32(0)
	for _, s := range touched {
		n := counts[s]
		counts[s] = off
		off += n
	}
	for _, a := range addrs {
		s := uint32((a / LineSize) & mask)
		grouped[counts[s]] = a
		counts[s]++
	}
	var hits, misses uint64
	start := uint32(0)
	for _, si := range touched {
		end := counts[si]
		counts[si] = 0 // restore the all-zero invariant for the next batch
		set := &c.sets[si]
		l := c.lockOf(uint64(si))
		l.acquire()
		h, m := c.applyGroupLocked(set, grouped[start:end])
		l.release()
		hits += h
		misses += m
		start = end
	}
	sc.touched = touched
	t.Hits += hits
	t.Misses += misses
}

// applyGroupLocked replays one set's group of accesses (lock held) with an
// exact shortcut: every access in the group carries a strictly newer clock
// than anything resident before the group started, so the min-clock victim
// of any in-group miss is never a line the group has already touched — as
// long as the group's distinct lines fit the set's ways. Repeats of an
// already-touched line are therefore guaranteed hits and need no tag scan;
// each distinct line costs exactly one touchLocked at its first occurrence.
// At group end, repeated lines' clocks are patched to their last-occurrence
// tick — exactly where per-access simulation would leave them (intermediate
// clock values are unobservable: group lines are never victim candidates
// mid-group, and the lock is held throughout). In the rare case of more
// distinct lines than ways — where an already-touched line can become the
// oldest again — the shortcut stops and the tail is replayed per access
// after patching, which restores exact per-access state first.
func (c *Cache) applyGroupLocked(set *cacheSet, group []uint64) (hits, misses uint64) {
	base := set.tick
	var dTags [MaxWays]uint64
	var dFirst, dLast [MaxWays]uint32
	nd := 0
	i := 0
	for ; i < len(group); i++ {
		tag := (group[i]/LineSize)>>c.setShift + 1
		k := 0
		for k < nd && dTags[k] != tag {
			k++
		}
		if k < nd {
			hits++
			dLast[k] = uint32(i)
			continue
		}
		if nd == c.ways {
			break
		}
		dTags[nd] = tag
		dFirst[nd] = uint32(i)
		dLast[nd] = uint32(i)
		nd++
		set.tick = base + uint64(i)
		if set.touchLocked(tag, c.ways) {
			misses++
		} else {
			hits++
		}
	}
	for k := 0; k < nd; k++ {
		if dLast[k] == dFirst[k] {
			continue
		}
		if set.w0.tag == dTags[k] {
			set.w0.clock = base + uint64(dLast[k]) + 1
			continue
		}
		for w := 0; w < c.ways-1; w++ {
			if set.tags[w] == dTags[k] {
				set.clks[w] = base + uint64(dLast[k]) + 1
				break
			}
		}
	}
	if i == len(group) {
		set.tick = base + uint64(len(group))
		return hits, misses
	}
	set.tick = base + uint64(i)
	for ; i < len(group); i++ {
		if set.touchLocked((group[i]/LineSize)>>c.setShift+1, c.ways) {
			misses++
		} else {
			hits++
		}
	}
	return hits, misses
}

// GroupedEntries is a set-major grouping of per-line aggregates, precomputed
// once by GroupEntries and re-applied every iteration via TouchGrouped. The
// grouping is a pure function of the entry list, so a chunk that is re-applied
// with the same aggregates (full-active programs re-visiting an immutable
// chunk) can skip the per-call counting sort entirely.
type GroupedEntries struct {
	Sets []uint32     // distinct set indices, in group order
	Ends []uint32     // Eg[Ends[i-1]:Ends[i]] is set Sets[i]'s group (Ends[-1] = 0)
	Eg   []BatchEntry // entries scattered set-major, append order within a set
}

// GroupEntries precomputes the set-major grouping that TouchEntries derives
// per call, returning freshly allocated slices safe to retain. It reports
// ok=false — and derives nothing — when any set's distinct lines exceed the
// cache's ways, exactly the condition under which TouchEntries would refuse
// the batch.
func (c *Cache) GroupEntries(entries []BatchEntry, sc *BatchScratch) (GroupedEntries, bool) {
	var g GroupedEntries
	if len(entries) == 0 {
		return g, true
	}
	mask := c.numSets - 1
	if uint64(len(sc.counts)) < c.numSets {
		sc.counts = make([]uint32, c.numSets)
	}
	counts := sc.counts
	touched := sc.touched[:0]
	overflow := false
	for i := range entries {
		s := uint32(entries[i].Line & mask)
		if counts[s] == 0 {
			touched = append(touched, s)
		}
		counts[s]++
		if counts[s] > uint32(c.ways) {
			overflow = true
		}
	}
	sc.touched = touched
	if overflow {
		for _, s := range touched {
			counts[s] = 0
		}
		return g, false
	}
	g.Sets = append([]uint32(nil), touched...)
	g.Ends = make([]uint32, len(touched))
	g.Eg = make([]BatchEntry, len(entries))
	off := uint32(0)
	for i, s := range touched {
		n := counts[s]
		counts[s] = off
		off += n
		g.Ends[i] = off
	}
	for _, e := range entries {
		s := uint32(e.Line & mask)
		g.Eg[counts[s]] = e
		counts[s]++
	}
	for _, s := range touched {
		counts[s] = 0
	}
	return g, true
}

// TouchGrouped settles a pre-grouped state phase: observably identical to
// TouchEntries over the ungrouped entry list (same locks, same per-set clock
// arithmetic), minus the grouping passes.
func (c *Cache) TouchGrouped(g *GroupedEntries, phaseLen uint64, t *Tally) {
	var hits, misses uint64
	start := uint32(0)
	for i, si := range g.Sets {
		end := g.Ends[i]
		set := &c.sets[si]
		l := c.lockOf(uint64(si))
		l.acquire()
		base := set.tick
		for _, e := range g.Eg[start:end] {
			tag := e.Line>>c.setShift + 1
			if set.w0.tag == tag {
				// MRU hit: the clock write below is the only observable
				// effect (tick is rewritten before the next probe), so the
				// call is skipped entirely.
				set.w0.clock = base + uint64(e.Last) + 1
				hits += uint64(e.Count)
				continue
			}
			set.tick = base + uint64(e.First)
			if set.touchLocked(tag, c.ways) {
				misses++
			} else {
				hits++
			}
			set.w0.clock = base + uint64(e.Last) + 1
			hits += uint64(e.Count - 1)
		}
		set.tick = base + phaseLen
		l.release()
		start = end
	}
	t.Hits += hits
	t.Misses += misses
}

// TouchEntries prices a batch given per-line aggregates instead of the raw
// access stream, in one pass over ~count-of-distinct-lines elements. It is
// observably identical to TouchBatch over the raw stream the entries
// summarize, by the same argument applyGroupLocked uses: while a set-group's
// distinct lines fit the ways, an already-touched line always carries a
// strictly newer clock than anything resident before the group, so it can
// never be the min-clock victim of a later in-group miss — every repeat is
// a guaranteed hit, and only each line's first access needs simulating.
// Entry clocks are written from batch-global positions rather than per-set
// sequence numbers; that yields different clock values than per-access
// simulation but the same strict order within every set (a subsequence
// inherits the global order), and clocks are only ever compared within a
// set, so every future victim choice — and therefore every observable
// hit/miss — is unchanged. phaseLen (the raw stream's length) bounds every
// written clock and advances each touched set's tick past it, keeping ticks
// monotone for later accesses.
//
// If any set-group's distinct lines exceed the ways — where an in-group
// line could age back into victimhood and repeats are no longer guaranteed
// hits — the aggregates are insufficient and TouchEntries returns false
// WITHOUT touching any cache state (grouping is pure); the caller falls
// back to the raw-stream TouchBatch path. With realistic geometries this is
// vanishingly rare: it needs >ways distinct lines of one set in one chunk.
func (c *Cache) TouchEntries(entries []BatchEntry, phaseLen uint64, sc *BatchScratch, t *Tally) bool {
	if len(entries) == 0 {
		return true
	}
	mask := c.numSets - 1
	if uint64(len(sc.counts)) < c.numSets {
		sc.counts = make([]uint32, c.numSets)
	}
	counts := sc.counts
	touched := sc.touched[:0]
	overflow := false
	for i := range entries {
		s := uint32(entries[i].Line & mask)
		if counts[s] == 0 {
			touched = append(touched, s)
		}
		counts[s]++
		if counts[s] > uint32(c.ways) {
			overflow = true
		}
	}
	sc.touched = touched
	if overflow {
		for _, s := range touched {
			counts[s] = 0
		}
		return false
	}
	if cap(sc.egrouped) < len(entries) {
		sc.egrouped = make([]BatchEntry, len(entries))
	}
	eg := sc.egrouped[:len(entries)]
	off := uint32(0)
	for _, s := range touched {
		n := counts[s]
		counts[s] = off
		off += n
	}
	for _, e := range entries {
		s := uint32(e.Line & mask)
		eg[counts[s]] = e
		counts[s]++
	}
	var hits, misses uint64
	start := uint32(0)
	for _, si := range touched {
		end := counts[si]
		counts[si] = 0 // restore the all-zero invariant for the next batch
		set := &c.sets[si]
		l := c.lockOf(uint64(si))
		l.acquire()
		base := set.tick
		for _, e := range eg[start:end] {
			// Entries sit in first-occurrence order (grouping preserves
			// append order); simulate the first access, then credit the
			// repeats as hits and stamp the line's clock with its last
			// occurrence — touchLocked left the line at way 0. An MRU hit
			// is inlined: the clock write is its only observable effect.
			tag := e.Line>>c.setShift + 1
			if set.w0.tag == tag {
				set.w0.clock = base + uint64(e.Last) + 1
				hits += uint64(e.Count)
				continue
			}
			set.tick = base + uint64(e.First)
			if set.touchLocked(tag, c.ways) {
				misses++
			} else {
				hits++
			}
			set.w0.clock = base + uint64(e.Last) + 1
			hits += uint64(e.Count - 1)
		}
		set.tick = base + phaseLen
		l.release()
		start = end
	}
	t.Hits += hits
	t.Misses += misses
	return true
}

// FlushTally folds a batch of tallied accesses into the cache-wide totals
// and into ctr (if non-nil), with one atomic add per counter — the batched
// equivalent of the per-access updates Touch performs. The hot path calls it
// once per applied chunk. shard picks the slot of the sharded cache-wide
// totals (callers pass a stable per-job or per-worker value, e.g. the job
// ID); it only spreads contention — any shard sums into the same totals.
func (c *Cache) FlushTally(t Tally, ctr *Counters, shard int) {
	sh := &c.shards[uint64(shard)&(tallyShards-1)]
	if t.Hits != 0 {
		sh.hits.Add(t.Hits)
	}
	if t.Misses != 0 {
		sh.misses.Add(t.Misses)
	}
	if ctr == nil {
		return
	}
	if t.Hits != 0 {
		ctr.Hits.Add(t.Hits)
	}
	if t.Misses != 0 {
		ctr.Misses.Add(t.Misses)
	}
	if n := t.Hits + t.Misses; n != 0 {
		ctr.Instructions.Add(n)
	}
}

// TouchRange simulates a sequential scan of [addr, addr+n) and reports the
// number of line misses. Used for bulk edge streaming.
func (c *Cache) TouchRange(addr, n uint64, ctr *Counters) int {
	if n == 0 {
		return 0
	}
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	misses := 0
	for l := first; l <= last; l++ {
		if c.Touch(l*LineSize, ctr) {
			misses++
		}
	}
	return misses
}

// TotalMisses returns the cache-wide miss count, summed over the tally
// shards. Multiplying by LineSize gives the volume of data swapped into the
// LLC (Figure 14).
func (c *Cache) TotalMisses() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].misses.Load()
	}
	return n
}

// TotalHits returns the cache-wide hit count, summed over the tally shards.
func (c *Cache) TotalHits() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].hits.Load()
	}
	return n
}

// SwappedBytes returns the total bytes loaded into the cache.
func (c *Cache) SwappedBytes() uint64 { return c.TotalMisses() * LineSize }

// MissRate returns the cache-wide miss rate.
func (c *Cache) MissRate() float64 {
	h, m := c.TotalHits(), c.TotalMisses()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}

// Reset clears contents and counters. Not safe concurrently with Touch.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = cacheSet{}
	}
	for i := range c.shards {
		c.shards[i].hits.Store(0)
		c.shards[i].misses.Store(0)
	}
}

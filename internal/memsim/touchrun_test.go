package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTouchRunEquivalentToTouches is the property the batched hot path
// rests on: a TouchRun of n accesses is observably equivalent to n per-edge
// Touch calls on the same line — the same hit/miss counts accumulate, and
// the cache is left in the same LRU state. The replayed streams are random
// (addresses and run lengths), and the final-state comparison is behavioral:
// after the divergence-prone replay, both caches must answer an identical
// probe stream identically, which exposes any difference in resident tags
// or LRU ordering as a differing miss.
func TestTouchRunEquivalentToTouches(t *testing.T) {
	type op struct {
		Addr uint16
		N    uint8
	}
	cfg := Config{SizeBytes: 4 << 10, Ways: 4} // small: evictions are common
	f := func(ops []op, probeSeed int64) bool {
		perEdge, err := NewCache(cfg)
		if err != nil {
			return false
		}
		batched, _ := NewCache(cfg)
		var perCtr, batCtr Counters
		var tally Tally
		for _, o := range ops {
			n := uint64(o.N%6) + 1 // run lengths 1..6, like 12-byte edges in a 64-byte line
			addr := uint64(o.Addr)
			firstMiss := false
			for k := uint64(0); k < n; k++ {
				m := perEdge.Touch(addr, &perCtr)
				if k == 0 {
					firstMiss = m
				} else if m {
					return false // later accesses of a run must hit
				}
			}
			if got := batched.TouchRun(addr, n, &tally); got != firstMiss {
				return false
			}
		}
		batched.FlushTally(tally, &batCtr, 0)
		if perCtr.Hits.Load() != batCtr.Hits.Load() ||
			perCtr.Misses.Load() != batCtr.Misses.Load() ||
			perCtr.Instructions.Load() != batCtr.Instructions.Load() {
			return false
		}
		if perEdge.TotalHits() != batched.TotalHits() ||
			perEdge.TotalMisses() != batched.TotalMisses() {
			return false
		}
		// Behavioral LRU probe: stream fresh conflicting lines through both
		// caches one access at a time; any divergence in resident tags or
		// victim ordering left behind by the replay shows up as a miss
		// mismatch.
		rng := rand.New(rand.NewSource(probeSeed))
		for i := 0; i < 512; i++ {
			addr := uint64(rng.Intn(1 << 16))
			if perEdge.Touch(addr, nil) != batched.Touch(addr, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTouchRunZeroLength pins the degenerate case: no accesses, no state
// change, no counts.
func TestTouchRunZeroLength(t *testing.T) {
	c, err := NewCache(DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	var tally Tally
	if c.TouchRun(0, 0, &tally) {
		t.Fatal("zero-length run reported a miss")
	}
	if tally.Accesses() != 0 {
		t.Fatalf("zero-length run tallied %d accesses", tally.Accesses())
	}
	if !c.Touch(0, nil) {
		t.Fatal("zero-length run changed cache state (line became resident)")
	}
}

// TestFlushTallyConservation checks the flush folds exactly the tallied
// counts into both counter sinks, including the nil-ctr form.
func TestFlushTallyConservation(t *testing.T) {
	c, _ := NewCache(DefaultConfig(64 << 10))
	var tally Tally
	for i := 0; i < 100; i++ {
		c.TouchRun(uint64(i)*LineSize, 3, &tally)
	}
	if got := tally.Accesses(); got != 300 {
		t.Fatalf("tally accesses = %d, want 300", got)
	}
	var ctr Counters
	c.FlushTally(tally, &ctr, 3)
	if ctr.Hits.Load() != tally.Hits || ctr.Misses.Load() != tally.Misses {
		t.Fatalf("ctr %d/%d after flush, want %d/%d",
			ctr.Hits.Load(), ctr.Misses.Load(), tally.Hits, tally.Misses)
	}
	if ctr.Instructions.Load() != 300 {
		t.Fatalf("instructions = %d, want 300", ctr.Instructions.Load())
	}
	if c.TotalHits() != tally.Hits || c.TotalMisses() != tally.Misses {
		t.Fatalf("cache totals %d/%d, want %d/%d",
			c.TotalHits(), c.TotalMisses(), tally.Hits, tally.Misses)
	}
	c.FlushTally(Tally{}, nil, 0) // no-op form must not panic or count
	if c.TotalHits() != tally.Hits {
		t.Fatal("empty flush moved the totals")
	}
}

package replay_test

import (
	"sync"
	"testing"

	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/service"
	"graphm/internal/storage"
	"graphm/internal/trace"
)

func stressSystem(t *testing.T, workers int) *core.System {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("stress", 300, 2400, 19))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 3, disk)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 2
	cfg.Workers = workers
	sys, err := core.NewSystem(grid.AsLayout(), storage.NewMemory(disk, 64<<20), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestStressStatsDeltaSumsToTotals replays a compressed trace (no virtual
// waits — every tenant fires its submissions as fast as the race detector
// lets it) through the service with MaxInFlight=1. Serial admission makes
// the per-ticket StatsDelta windows tile the timeline exactly: no counter
// can move while no ticket is in flight, so the sum of every ticket's delta
// must equal the system totals, counter for counter. Run under -race this
// doubles as a concurrency stress of Submit/admit/finish.
func TestStressStatsDeltaSumsToTotals(t *testing.T) {
	sys := stressSystem(t, 0)
	svc := service.New(sys, service.Config{MaxInFlight: 1, MaxQueuedPerTenant: 64, Seed: 23})

	tr := trace.Generate(6, 23) // ~50 events, compressed to zero inter-arrival time
	tenants := []string{"alpha", "beta", "gamma"}
	var mu sync.Mutex
	var tickets []*service.Ticket
	var wg sync.WaitGroup
	for ti, tenant := range tenants {
		wg.Add(1)
		go func(ti int, tenant string) {
			defer wg.Done()
			for i, e := range tr.Events {
				if i%len(tenants) != ti {
					continue
				}
				tk, err := svc.Submit(service.Request{Tenant: tenant, Algo: e.Algo, Seed: e.Seed})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
			}
		}(ti, tenant)
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	var sum core.Stats
	for _, tk := range tickets {
		if st := tk.Status(); st != service.StatusDone {
			t.Fatalf("ticket %d finished %v", tk.ID, st)
		}
		d := tk.StatsDelta()
		sum.Rounds += d.Rounds
		sum.Suspensions += d.Suspensions
		sum.Resumes += d.Resumes
		sum.SharedLoads += d.SharedLoads
		sum.MidRoundJoins += d.MidRoundJoins
		sum.Detaches += d.Detaches
		sum.Prefetches += d.Prefetches
		sum.PrefetchHits += d.PrefetchHits
		sum.PrefetchCancels += d.PrefetchCancels
		sum.Relabels += d.Relabels
		sum.RelabelSkips += d.RelabelSkips
	}
	total := svc.SystemStats()
	if sum.Rounds != total.Rounds ||
		sum.Suspensions != total.Suspensions ||
		sum.Resumes != total.Resumes ||
		sum.SharedLoads != total.SharedLoads ||
		sum.MidRoundJoins != total.MidRoundJoins ||
		sum.Detaches != total.Detaches ||
		sum.Prefetches != total.Prefetches ||
		sum.PrefetchHits != total.PrefetchHits ||
		sum.PrefetchCancels != total.PrefetchCancels ||
		sum.Relabels != total.Relabels ||
		sum.RelabelSkips != total.RelabelSkips {
		t.Fatalf("per-ticket delta sums do not tile the totals:\nsum   %+v\ntotal %+v", sum, total)
	}
	if sum.Rounds == 0 {
		t.Fatal("no rounds counted — the assertion is vacuous")
	}
}

// TestStressConcurrentTenantsOverlapping hammers the overlapping-admission
// path under -race: many tenants, a deep in-flight window, the worker-pool
// executor, and a virtual clock being advanced concurrently with the
// drivers. Overlapping StatsDelta windows cannot tile, so here each delta
// is bounded by the totals and the lifecycle counters must balance.
func TestStressConcurrentTenantsOverlapping(t *testing.T) {
	sys := stressSystem(t, 2)
	clock := core.NewVirtualClock(core.WallClock{}.Now())
	svc := service.New(sys, service.Config{MaxInFlight: 8, MaxQueuedPerTenant: 64, Seed: 29, Clock: clock})

	tr := trace.Generate(8, 29)
	tenants := []string{"a", "b", "c", "d"}
	stop := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(1)
			}
		}
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var tickets []*service.Ticket
	for ti, tenant := range tenants {
		wg.Add(1)
		go func(ti int, tenant string) {
			defer wg.Done()
			for i, e := range tr.Events {
				if i%len(tenants) != ti {
					continue
				}
				tk, err := svc.Submit(service.Request{Tenant: tenant, Algo: e.Algo, Seed: e.Seed})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
			}
		}(ti, tenant)
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	clockWG.Wait()

	total := svc.SystemStats()
	for _, tk := range tickets {
		d := tk.StatsDelta()
		if d.Rounds > total.Rounds || d.SharedLoads > total.SharedLoads || d.MidRoundJoins > total.MidRoundJoins {
			t.Fatalf("ticket %d delta exceeds totals: %+v vs %+v", tk.ID, d, total)
		}
		if tk.QueueWait() < 0 || tk.Runtime() < 0 {
			t.Fatalf("ticket %d has negative virtual durations: wait=%v run=%v", tk.ID, tk.QueueWait(), tk.Runtime())
		}
	}
	snap := svc.Snapshot()
	// Submitted counts only accepted submissions (rejections are tallied
	// separately and never enter the queue), and this test tolerates no
	// rejections — so every submission must complete.
	if snap.Rejected != 0 {
		t.Fatalf("unexpected rejections: %+v", snap)
	}
	if snap.Completed != snap.Submitted {
		t.Fatalf("lifecycle imbalance: %+v", snap)
	}
	if total.MidRoundJoins == 0 {
		t.Fatal("overlapping arrivals produced no mid-round joins")
	}
}

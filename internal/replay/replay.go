// Package replay is the week-in-the-life soak harness: it drives the full
// Figure 2 trace (168 hours of diurnal job arrivals, mean concurrency ≈16,
// peaks above 30) through the online admission service on a virtual
// simulated clock. No wall-time sleeps anywhere — arrivals, queue waits and
// ticket lifecycles advance on simulated trace time, so a week replays in
// seconds while every job still genuinely streams the graph through
// core.System (shared loads, mid-round joins, chunk lockstep and all).
//
// # Determinism model
//
// The replay is a discrete-event simulation over the real service. A
// single-threaded event loop owns the virtual clock and processes exactly
// two event kinds in virtual-time order: trace arrivals (service.Submit)
// and scheduled departures. A job's virtual duration is drawn
// deterministically from its trace event seed (mean Config.JobHours,
// matching the ~1 h jobs the Figure 2 concurrency calibration assumes), so
// the whole admission timeline — who queues, who is admitted when, who is
// rejected for backpressure — is a pure function of (trace, Config).
//
// Real streaming runs concurrently between events, but it is invisible to
// the log: a driver that finishes streaming parks in the service's
// FinishGate (after closing its core session, so it holds no controller
// state) until the event loop releases it at the job's virtual departure
// time. Ticket timestamps are read from the injected core.VirtualClock,
// which only ever moves while the event loop is quiescent. The resulting
// ticket log is therefore byte-identical across same-seed runs, which
// TestReplayDeterministic asserts literally. Controller counters
// (SharedLoads, MidRoundJoins, Rounds...) DO depend on real goroutine
// interleaving; they are reported for observability but excluded from the
// deterministic log.
package replay

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"graphm/internal/core"
	"graphm/internal/scenario"
	"graphm/internal/service"
	"graphm/internal/trace"
)

// Config parameterizes one replay run.
type Config struct {
	// Hours is the trace length (default 168 — the paper's week).
	Hours int
	// Seed drives the trace generator and every per-job draw (tenant,
	// virtual duration). Same seed, same everything.
	Seed int64
	// Tenants is the number of fairness domains arrivals are spread across
	// (default 4).
	Tenants int
	// JobHours is the mean virtual job duration; individual jobs draw
	// uniformly from [0.5, 1.5]x. Default 2.0: the trace averages 8.5
	// arrivals/hour, and Figure 2's hourly-bucket counting makes a ~1 h job
	// appear in two buckets (bucketed mean ≈16 ⇒ instantaneous ≈8.5). The
	// replay measures *instantaneous* in-flight concurrency, so two-hour
	// jobs are what lands its mean ≈16 / peak >30 on the figure's numbers.
	JobHours float64
	// MaxInFlight caps concurrently admitted jobs (default 24: below the
	// trace's >30 peaks, so the replay exercises real queueing).
	MaxInFlight int
	// MaxQueuedPerTenant / MaxQueued bound the service queues (service
	// defaults apply when zero); tighten them to exercise ErrQueueFull
	// rejections in the log.
	MaxQueuedPerTenant int
	MaxQueued          int
	// Coverage is the per-traversal graph coverage fed to the Figure 4
	// sharing model (default 0.9).
	Coverage float64
	// NumV, NumE, Partitions size the synthetic R-MAT graph every job
	// streams (defaults 400 vertices, 3000 edges, 3x3 grid).
	NumV, NumE, Partitions int
	// LLCBytes, MemBudget size the simulated memory substrate.
	LLCBytes, MemBudget int64
	// Cores and Workers configure the underlying core.System (Workers 0 =
	// legacy serial driver).
	Cores, Workers int
}

func (c Config) withDefaults() Config {
	if c.Hours <= 0 {
		c.Hours = 168
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.JobHours <= 0 {
		c.JobHours = 2.0
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 24
	}
	if c.Coverage <= 0 {
		c.Coverage = 0.9
	}
	if c.NumV <= 0 {
		c.NumV = 400
	}
	if c.NumE <= 0 {
		c.NumE = 3000
	}
	if c.Partitions <= 0 {
		c.Partitions = 3
	}
	if c.LLCBytes <= 0 {
		c.LLCBytes = 32 << 10
	}
	if c.MemBudget <= 0 {
		c.MemBudget = 64 << 20
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	return c
}

// epoch anchors virtual hour 0. Any fixed instant works; Unix zero keeps
// timestamps readable in debugger output.
var epoch = time.Unix(0, 0).UTC()

// submission is one trace arrival resolved into a service request plus its
// deterministic virtual duration.
type submission struct {
	idx      int
	atHours  float64
	tenant   string
	algo     string
	seed     int64
	durHours float64
}

// submissions resolves the trace into arrival events. All randomness comes
// from per-event RNGs seeded by the trace event seed, so the schedule is a
// pure function of (trace, cfg).
func submissions(tr *trace.Trace, cfg Config) []submission {
	subs := make([]submission, len(tr.Events))
	for i, e := range tr.Events {
		rng := rand.New(rand.NewSource(e.Seed))
		subs[i] = submission{
			idx:      i,
			atHours:  e.AtHour,
			tenant:   fmt.Sprintf("t%02d", rng.Intn(cfg.Tenants)),
			algo:     e.Algo,
			seed:     e.Seed,
			durHours: cfg.JobHours * (0.5 + rng.Float64()),
		}
	}
	return subs
}

// departure is a scheduled virtual job completion.
type departure struct {
	atHours float64
	ticket  int
	seq     int // admission order, the deterministic tie-break
}

type depHeap []departure

func (h depHeap) Len() int { return len(h) }
func (h depHeap) Less(i, j int) bool {
	if h[i].atHours != h[j].atHours {
		return h[i].atHours < h[j].atHours
	}
	return h[i].seq < h[j].seq
}
func (h depHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *depHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// gate parks one driver goroutine between "finished streaming" and
// "virtually departed".
type gate struct {
	entered  chan struct{}
	release  chan struct{}
	released bool // release closed; guarded by run.mu
}

// tracked pairs a live ticket with its submission.
type tracked struct {
	tk        *service.Ticket
	sub       submission
	scheduled bool
	// admitAt/doneAt are virtual hours, filled as the lifecycle progresses.
	admitAt, doneAt float64
}

type run struct {
	cfg   Config
	clock *core.VirtualClock
	svc   *service.Service

	mu      sync.Mutex
	gates   map[int]*gate
	aborted bool

	order []*tracked // submission order (all accepted tickets, for the report)
	// unscheduled is the submission-ordered subset still awaiting admission;
	// scheduleAdmissions scans only this (queue depth, not total history).
	unscheduled []*tracked
	byID        map[int]*tracked
	seq         int

	log []string
	rep *Report
}

// gateFor lazily creates the gate for a ticket ID. Lazy because the driver
// goroutine can reach FinishGate before the event loop has seen the ticket.
func (r *run) gateFor(id int) *gate {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gates[id]
	if !ok {
		g = &gate{entered: make(chan struct{}), release: make(chan struct{})}
		r.gates[id] = g
	}
	return g
}

func (r *run) finishGate(t *service.Ticket) {
	g := r.gateFor(t.ID)
	r.mu.Lock()
	aborted := r.aborted
	r.mu.Unlock()
	close(g.entered)
	if aborted {
		// The event loop bailed out: nobody will schedule this driver's
		// virtual departure, so it must not park.
		return
	}
	<-g.release
}

// releaseGate opens a gate exactly once.
func (r *run) releaseGate(g *gate) {
	r.mu.Lock()
	if !g.released {
		g.released = true
		close(g.release)
	}
	r.mu.Unlock()
}

// abort unblocks every parked (and future) driver after an event-loop
// failure, so the service can drain instead of stranding its in-flight
// goroutines (and the whole System) for the process lifetime — the bench
// cap sweep runs several replays per process.
func (r *run) abort() {
	r.mu.Lock()
	r.aborted = true
	gates := make([]*gate, 0, len(r.gates))
	for _, g := range r.gates {
		gates = append(gates, g)
	}
	r.mu.Unlock()
	for _, g := range gates {
		r.releaseGate(g)
	}
	_ = r.svc.Drain()
}

func (r *run) logf(format string, args ...any) {
	r.log = append(r.log, fmt.Sprintf(format, args...))
}

func (r *run) hoursNow() float64 {
	return r.clock.Now().Sub(epoch).Hours()
}

// Run replays the trace through a fresh service instance and returns the
// aggregated report. The ticket log in the report is byte-identical across
// runs with the same Config.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	env, _, err := scenario.GenEnv("replay", cfg.NumV, cfg.NumE, cfg.Partitions, cfg.Seed, cfg.LLCBytes, cfg.MemBudget)
	if err != nil {
		return nil, err
	}
	ccfg := core.DefaultConfig(cfg.LLCBytes)
	ccfg.Cores = cfg.Cores
	ccfg.Workers = cfg.Workers
	sys, err := core.NewSystem(env.Layout, env.Mem, env.Cache, ccfg)
	if err != nil {
		return nil, err
	}
	r := &run{
		cfg:   cfg,
		clock: core.NewVirtualClock(epoch),
		gates: make(map[int]*gate),
		byID:  make(map[int]*tracked),
		rep:   newReport(cfg),
	}
	r.svc = service.New(sys, service.Config{
		MaxInFlight:        cfg.MaxInFlight,
		MaxQueuedPerTenant: cfg.MaxQueuedPerTenant,
		MaxQueued:          cfg.MaxQueued,
		Seed:               cfg.Seed,
		Clock:              r.clock,
		FinishGate:         r.finishGate,
	})

	start := time.Now()
	tr := trace.GenerateRand(rand.New(rand.NewSource(cfg.Seed)), cfg.Hours)
	subs := submissions(tr, cfg)

	var deps depHeap
	ai := 0
	for ai < len(subs) || deps.Len() > 0 {
		// Next event: the earlier of the next arrival and the next scheduled
		// departure; departures win ties so a freed slot is available to an
		// arrival at the same instant.
		depNext := deps.Len() > 0
		var at float64
		if depNext {
			at = deps[0].atHours
		}
		if ai < len(subs) && (!depNext || subs[ai].atHours < at) {
			at = subs[ai].atHours
			depNext = false
		}
		r.clock.Set(epoch.Add(time.Duration(at * float64(time.Hour))))
		if depNext {
			d := heap.Pop(&deps).(departure)
			if err := r.depart(d); err != nil {
				r.abort()
				return nil, err
			}
		} else {
			r.submit(subs[ai])
			ai++
		}
		// Any admissions triggered by this event happened synchronously at
		// the current virtual instant: schedule their departures now, before
		// the clock can move.
		r.scheduleAdmissions(&deps)
	}
	if err := r.svc.Drain(); err != nil {
		return nil, err
	}
	r.rep.Wall = time.Since(start)
	r.finishReport(tr)
	return r.rep, nil
}

// submit plays one arrival into the service.
func (r *run) submit(s submission) {
	now := r.hoursNow()
	tk, err := r.svc.Submit(service.Request{Tenant: s.tenant, Algo: s.algo, Seed: s.seed})
	ts := r.rep.tenant(s.tenant)
	ts.Submitted++
	r.rep.Submitted++
	if err != nil {
		if errors.Is(err, service.ErrQueueFull) {
			ts.Rejected++
			r.rep.Rejected++
			r.logf("%09.4fh reject id=---- tenant=%s algo=%-8s", now, s.tenant, s.algo)
			return
		}
		// Anything else is a harness bug, not backpressure; surface it
		// loudly in the log and the failure counters.
		ts.Failed++
		r.rep.Failed++
		r.logf("%09.4fh error  tenant=%s algo=%-8s err=%v", now, s.tenant, s.algo, err)
		return
	}
	t := &tracked{tk: tk, sub: s}
	r.order = append(r.order, t)
	r.unscheduled = append(r.unscheduled, t)
	r.byID[tk.ID] = t
	r.logf("%09.4fh submit id=%04d tenant=%s algo=%-8s dur=%.4fh", now, tk.ID, s.tenant, s.algo, s.durHours)
}

// depart releases one gated driver at its scheduled virtual departure time
// and waits for the service to finish the ticket (and admit successors)
// while the clock is frozen at that instant.
func (r *run) depart(d departure) error {
	t := r.byID[d.ticket]
	g := r.gateFor(d.ticket)
	// The driver may still be streaming in real time; its virtual departure
	// cannot happen before the work it stands for is actually done.
	<-g.entered
	r.releaseGate(g)
	st := t.tk.Wait()
	// Synchronization barrier: finish() updates counters and admits
	// successors under the service mutex before releasing it; Snapshot
	// serializes after that, so scheduleAdmissions sees every admission
	// this departure caused.
	_ = r.svc.Snapshot()
	t.doneAt = r.hoursNow()
	switch st {
	case service.StatusDone:
		r.rep.Completed++
		r.rep.tenant(t.sub.tenant).Completed++
	default:
		r.rep.Failed++
		r.rep.tenant(t.sub.tenant).Failed++
	}
	r.logf("%09.4fh %-6s id=%04d tenant=%s algo=%-8s wait=%.4fh run=%.4fh",
		t.doneAt, st, t.tk.ID, t.sub.tenant, t.sub.algo,
		t.tk.QueueWait().Hours(), t.tk.Runtime().Hours())
	if err := t.tk.Err(); err != nil {
		return fmt.Errorf("replay: ticket %d failed: %w", t.tk.ID, err)
	}
	return nil
}

// scheduleAdmissions scans the still-queued tickets for ones the service
// has admitted since the last event and schedules their virtual departures.
// The scan walks the submission-ordered unscheduled list (so log order is
// deterministic) and retains only the tickets that stayed queued.
func (r *run) scheduleAdmissions(deps *depHeap) {
	now := r.hoursNow()
	still := r.unscheduled[:0]
	for _, t := range r.unscheduled {
		st := t.tk.Status()
		if st == service.StatusQueued {
			still = append(still, t)
			continue
		}
		t.scheduled = true
		if st == service.StatusFailed {
			// Admission failed terminally (no driver, no gate).
			r.rep.Failed++
			r.rep.tenant(t.sub.tenant).Failed++
			r.logf("%09.4fh failed id=%04d tenant=%s algo=%-8s", now, t.tk.ID, t.sub.tenant, t.sub.algo)
			continue
		}
		t.admitAt = now
		r.rep.Admitted++
		r.rep.tenant(t.sub.tenant).Admitted++
		r.seq++
		heap.Push(deps, departure{atHours: now + t.sub.durHours, ticket: t.tk.ID, seq: r.seq})
		r.logf("%09.4fh admit  id=%04d tenant=%s algo=%-8s wait=%.4fh",
			now, t.tk.ID, t.sub.tenant, t.sub.algo, t.tk.QueueWait().Hours())
	}
	r.unscheduled = still
}

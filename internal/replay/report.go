package replay

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"graphm/internal/core"
	"graphm/internal/service"
	"graphm/internal/slo"
	"graphm/internal/trace"
)

// TenantStats is the per-tenant slice of the admission outcome counters.
type TenantStats struct {
	Submitted, Admitted, Rejected, Completed, Failed int
	// MeanWaitHours is the tenant's mean virtual queue wait across admitted
	// tickets.
	MeanWaitHours float64
}

// Report is one replay run's outcome: the deterministic ticket log, the
// SLO-style aggregates computed from it, and the (schedule-dependent)
// counters of the real execution underneath.
type Report struct {
	Cfg Config

	// Log is the deterministic ticket log: one line per lifecycle event
	// (submit/admit/done/reject), in event-loop order. Byte-identical
	// across same-seed runs.
	Log []string

	// Outcome counters (deterministic).
	Submitted, Admitted, Rejected, Completed, Failed int

	// Queue-wait distribution over admitted tickets, in virtual hours
	// (deterministic).
	WaitP50, WaitP90, WaitP99, WaitMax, WaitMean float64

	// Virtual concurrency of the replayed schedule (deterministic):
	// time-weighted mean and peak of the number of jobs in flight.
	MeanConcurrency float64
	PeakConcurrency int

	// SharedFraction is the time-weighted Figure 4(a) headline for the
	// replayed schedule: the fraction of the graph touched by more than one
	// in-flight job under the trace package's sharing model (deterministic;
	// the paper reports >82%).
	SharedFraction float64

	// TraceStats echoes the input trace's Figure 2 statistics.
	TraceStats trace.Stats

	// Real execution residue — genuine streaming through core.System. These
	// depend on goroutine interleaving and are NOT part of the
	// deterministic contract.
	SysStats core.Stats
	Snap     service.Snapshot
	Wall     time.Duration

	tenants map[string]*TenantStats
}

func newReport(cfg Config) *Report {
	return &Report{Cfg: cfg, tenants: make(map[string]*TenantStats)}
}

func (p *Report) tenant(name string) *TenantStats {
	ts, ok := p.tenants[name]
	if !ok {
		ts = &TenantStats{}
		p.tenants[name] = ts
	}
	return ts
}

// Tenant returns one tenant's counters (zero stats for unknown tenants).
func (p *Report) Tenant(name string) TenantStats {
	if ts, ok := p.tenants[name]; ok {
		return *ts
	}
	return TenantStats{}
}

// TenantNames returns the tenants seen, sorted.
func (p *Report) TenantNames() []string {
	names := make([]string, 0, len(p.tenants))
	for n := range p.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LogText renders the ticket log as one newline-terminated string — the
// byte-identical artifact of the determinism contract.
func (p *Report) LogText() string {
	if len(p.Log) == 0 {
		return ""
	}
	return strings.Join(p.Log, "\n") + "\n"
}

// finishReport computes the aggregate metrics from the completed timeline.
func (r *run) finishReport(tr *trace.Trace) {
	p := r.rep
	// The Figure 2 echo keeps the trace's own 1 h-job bucketed convention,
	// independent of the virtual durations this replay drew.
	p.TraceStats = tr.ConcurrencyStats(1.0)
	p.SysStats = r.svc.SystemStats()
	p.Snap = r.svc.Snapshot()

	// Queue waits over admitted tickets, and per-tenant means.
	var waits []float64
	waitSum := make(map[string]float64)
	for _, t := range r.order {
		if !t.scheduled || t.tk.Status() != service.StatusDone {
			continue
		}
		w := t.tk.QueueWait().Hours()
		waits = append(waits, w)
		waitSum[t.sub.tenant] += w
	}
	// The offline SLO computation is the shared internal/slo aggregation —
	// the same math the daemon's /metrics endpoint reports from a rolling
	// window, which is what makes the two differentially testable.
	if s := slo.Summarize(waits); s.Count > 0 {
		p.WaitMean = s.Mean
		p.WaitP50 = s.P50
		p.WaitP90 = s.P90
		p.WaitP99 = s.P99
		p.WaitMax = s.Max
	}
	for name, ts := range p.tenants {
		if ts.Completed > 0 {
			ts.MeanWaitHours = waitSum[name] / float64(ts.Completed)
		}
	}

	// Virtual concurrency: sweep the admit/done step function.
	type step struct {
		at    float64
		delta int
	}
	var steps []step
	end := float64(r.cfg.Hours)
	for _, t := range r.order {
		if t.admitAt == 0 && t.doneAt == 0 && t.tk.Status() != service.StatusDone {
			continue
		}
		steps = append(steps, step{t.admitAt, +1}, step{t.doneAt, -1})
		if t.doneAt > end {
			end = t.doneAt
		}
	}
	sort.Slice(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].delta < steps[j].delta
	})
	sharing := make(map[int]float64)
	moreThan1 := func(k int) float64 {
		if v, ok := sharing[k]; ok {
			return v
		}
		v := trace.Sharing(k, r.cfg.Coverage).MoreThan1
		sharing[k] = v
		return v
	}
	k, prev := 0, 0.0
	var concArea, sharedArea float64
	for _, s := range steps {
		dt := s.at - prev
		if dt > 0 {
			concArea += float64(k) * dt
			sharedArea += moreThan1(k) * dt
			prev = s.at
		}
		k += s.delta
		if k > p.PeakConcurrency {
			p.PeakConcurrency = k
		}
	}
	if end > prev {
		dt := end - prev
		concArea += float64(k) * dt
		sharedArea += moreThan1(k) * dt
	}
	if end > 0 {
		p.MeanConcurrency = concArea / end
		p.SharedFraction = sharedArea / end
	}
	p.Log = r.log
}

// Summary writes the human-readable roll-up: the deterministic SLO metrics
// first, then the real-execution counters (marked as such). The layout is
// pinned by the graphm-replay golden test with numbers masked.
func (p *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "== replay: %dh trace through the admission service on a virtual clock ==\n", p.Cfg.Hours)
	fmt.Fprintf(w, "trace: mean=%.1f peak=%d concurrent jobs (paper fig 2: mean~16 peak>30)\n",
		p.TraceStats.Mean, p.TraceStats.Peak)
	fmt.Fprintf(w, "tickets: submitted=%d admitted=%d rejected=%d completed=%d failed=%d\n",
		p.Submitted, p.Admitted, p.Rejected, p.Completed, p.Failed)
	fmt.Fprintf(w, "in-flight: mean=%.1f peak=%d (cap %d)\n",
		p.MeanConcurrency, p.PeakConcurrency, p.Cfg.MaxInFlight)
	fmt.Fprintf(w, "queue wait (virtual h): mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f\n",
		p.WaitMean, p.WaitP50, p.WaitP90, p.WaitP99, p.WaitMax)
	fmt.Fprintf(w, "shared fraction (>1 job): %.1f%% (paper fig 4: >82%%)\n", 100*p.SharedFraction)
	fmt.Fprintf(w, "per tenant:\n")
	fmt.Fprintf(w, "  tenant  submitted  admitted  rejected  completed  mean wait\n")
	for _, name := range p.TenantNames() {
		ts := p.tenants[name]
		fmt.Fprintf(w, "  %-6s  %9d  %8d  %8d  %9d  %.4fh\n",
			name, ts.Submitted, ts.Admitted, ts.Rejected, ts.Completed, ts.MeanWaitHours)
	}
	fmt.Fprintf(w, "real execution (schedule-dependent): rounds=%d shared-loads=%d mid-round-joins=%d suspensions=%d wall=%v\n",
		p.SysStats.Rounds, p.SysStats.SharedLoads, p.SysStats.MidRoundJoins, p.SysStats.Suspensions,
		p.Wall.Round(time.Millisecond))
}

package replay_test

import (
	"math"
	"strings"
	"testing"

	"graphm/internal/replay"
	"graphm/internal/service"
)

// TestReplayWeekDeterministic is the acceptance bar for the harness: the
// full 168-hour Figure 2 trace, replayed twice with the same seed, must
// produce byte-identical ticket logs and identical aggregate metrics — and
// both replays together must stay inside the unit-test time budget (the
// virtual clock, not wall sleeps, is what makes a week cheap).
func TestReplayWeekDeterministic(t *testing.T) {
	cfg := replay.Config{Hours: 168, Seed: 42}
	a, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogText() != b.LogText() {
		t.Fatal("same-seed replays produced different ticket logs")
	}
	if a.Submitted < 1000 {
		t.Fatalf("week trace produced only %d submissions — trace shape broken", a.Submitted)
	}
	if a.WaitP50 != b.WaitP50 || a.WaitP99 != b.WaitP99 || a.MeanConcurrency != b.MeanConcurrency ||
		a.SharedFraction != b.SharedFraction || a.PeakConcurrency != b.PeakConcurrency {
		t.Fatal("same-seed replays disagree on aggregate metrics")
	}
	// A different seed must actually change the schedule.
	c, err := replay.Run(replay.Config{Hours: 168, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.LogText() == a.LogText() {
		t.Fatal("different seeds produced identical ticket logs")
	}
}

// TestReplayMatchesPaperShape checks the replayed week lands on the paper's
// workload statistics: mean in-flight concurrency near the trace's ~16,
// sharing above the 82% headline, real peaks pressed against the admission
// cap, and genuine sharing in the real execution underneath.
func TestReplayMatchesPaperShape(t *testing.T) {
	rep, err := replay.Run(replay.Config{Hours: 168, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanConcurrency < 10 || rep.MeanConcurrency > 20 {
		t.Errorf("mean virtual concurrency = %.1f, want ~16", rep.MeanConcurrency)
	}
	if rep.PeakConcurrency != rep.Cfg.MaxInFlight {
		t.Errorf("peak concurrency = %d, want pressed against the cap %d (trace peaks >30)",
			rep.PeakConcurrency, rep.Cfg.MaxInFlight)
	}
	if rep.SharedFraction < 0.82 {
		t.Errorf("shared fraction = %.3f, want >= 0.82 (paper fig 4)", rep.SharedFraction)
	}
	if rep.WaitMax <= 0 {
		t.Error("no ticket ever queued: the >30-job peaks should exceed the in-flight cap")
	}
	if rep.SysStats.SharedLoads == 0 || rep.SysStats.MidRoundJoins == 0 {
		t.Errorf("real execution shows no sharing (shared loads %d, mid-round joins %d)",
			rep.SysStats.SharedLoads, rep.SysStats.MidRoundJoins)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d != admitted %d (no cancellations in a replay)", rep.Completed, rep.Admitted)
	}
}

// TestReplayAccountingConsistent cross-checks every counter in a short
// replay: totals, per-tenant slices, the log line count, and the virtual
// timestamps of each ticket.
func TestReplayAccountingConsistent(t *testing.T) {
	rep, err := replay.Run(replay.Config{Hours: 24, Seed: 11, Tenants: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d tickets failed", rep.Failed)
	}
	if rep.Submitted != rep.Admitted+rep.Rejected {
		t.Fatalf("submitted %d != admitted %d + rejected %d", rep.Submitted, rep.Admitted, rep.Rejected)
	}
	var sub, adm, rej, comp int
	for _, name := range rep.TenantNames() {
		ts := rep.Tenant(name)
		sub += ts.Submitted
		adm += ts.Admitted
		rej += ts.Rejected
		comp += ts.Completed
	}
	if sub != rep.Submitted || adm != rep.Admitted || rej != rep.Rejected || comp != rep.Completed {
		t.Fatalf("per-tenant sums (%d/%d/%d/%d) disagree with totals (%d/%d/%d/%d)",
			sub, adm, rej, comp, rep.Submitted, rep.Admitted, rep.Rejected, rep.Completed)
	}
	// Every accepted ticket logs submit+admit+done; every rejection one line.
	want := 3*rep.Admitted + rep.Rejected
	if len(rep.Log) != want {
		t.Fatalf("log has %d lines, want %d", len(rep.Log), want)
	}
	if rep.PeakConcurrency > rep.Cfg.MaxInFlight {
		t.Fatalf("peak concurrency %d exceeds the admission cap %d", rep.PeakConcurrency, rep.Cfg.MaxInFlight)
	}
	if rep.Snap.Completed != uint64(rep.Completed) {
		t.Fatalf("service snapshot completed %d != report %d", rep.Snap.Completed, rep.Completed)
	}
}

// TestReplayVirtualRuntimes: each ticket's service-reported Runtime (from
// the injected virtual clock) must equal its scheduled virtual duration, and
// waits must be non-negative — the clock plumbing, end to end.
func TestReplayVirtualRuntimes(t *testing.T) {
	rep, err := replay.Run(replay.Config{Hours: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, line := range rep.Log {
		if !strings.Contains(line, " done ") && !strings.HasPrefix(strings.SplitN(line, " ", 2)[1], "done") {
			continue
		}
		checked++
	}
	// The run= field of each done line is the virtual runtime; spot-check the
	// log carries it for every completion.
	if checked != rep.Completed {
		t.Fatalf("found %d done lines, want %d", checked, rep.Completed)
	}
	if rep.WaitMean < 0 || rep.WaitP99 < rep.WaitP50 || rep.WaitMax < rep.WaitP99 {
		t.Fatalf("wait distribution inconsistent: mean=%v p50=%v p99=%v max=%v",
			rep.WaitMean, rep.WaitP50, rep.WaitP99, rep.WaitMax)
	}
	if math.IsNaN(rep.MeanConcurrency) || rep.MeanConcurrency <= 0 {
		t.Fatalf("mean concurrency = %v", rep.MeanConcurrency)
	}
}

// TestReplayBackpressure: with brutally tight queues the replay must reject
// deterministically rather than deadlock or buffer without bound.
func TestReplayBackpressure(t *testing.T) {
	cfg := replay.Config{Hours: 24, Seed: 5, MaxInFlight: 2, MaxQueuedPerTenant: 1, MaxQueued: 2}
	a, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rejected == 0 {
		t.Fatal("tight queues rejected nothing — backpressure never engaged")
	}
	b, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogText() != b.LogText() {
		t.Fatal("backpressure schedule not deterministic")
	}
}

// TestReplayWorkersExecutor runs the replay over the parallel streaming
// executor: the deterministic contract (byte-identical log across same-seed
// runs) must hold for any executor width, because virtual scheduling never
// reads real completion times.
func TestReplayWorkersExecutor(t *testing.T) {
	cfg := replay.Config{Hours: 12, Seed: 9, Workers: 2}
	a, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogText() != b.LogText() {
		t.Fatal("executor replay not deterministic")
	}
	// And the virtual schedule is independent of the executor width: the
	// serial driver must produce the identical ticket log.
	serial, err := replay.Run(replay.Config{Hours: 12, Seed: 9, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if serial.LogText() != a.LogText() {
		t.Fatal("ticket log depends on executor width — virtual time leaked real time")
	}
}

// TestReplaySummaryRendered sanity-checks the summary renderer (the full
// layout is pinned by the graphm-replay golden test).
func TestReplaySummaryRendered(t *testing.T) {
	rep, err := replay.Run(replay.Config{Hours: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Summary(&sb)
	out := sb.String()
	for _, want := range []string{"== replay:", "tickets:", "queue wait", "shared fraction", "per tenant", "real execution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestTicketStatusStringsStable pins the status strings the ticket log
// embeds; renaming one silently changes the byte-identical log format.
func TestTicketStatusStringsStable(t *testing.T) {
	if service.StatusDone.String() != "done" || service.StatusFailed.String() != "failed" {
		t.Fatalf("ticket status strings changed: %q/%q",
			service.StatusDone.String(), service.StatusFailed.String())
	}
}

module graphm

go 1.23

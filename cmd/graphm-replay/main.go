// Command graphm-replay runs the week-in-the-life trace replay: the
// synthetic Figure 2 trace (mean ≈16 concurrent jobs, peaks >30 over 168
// hours) driven through the online admission service on a virtual simulated
// clock. A week of arrivals, queue waits and ticket lifecycles replays in
// seconds of wall time; the ticket log is byte-identical for a given seed.
//
// Usage:
//
//	graphm-replay                        # the full 168 h week
//	graphm-replay -hours 24 -inflight 8  # one saturated day
//	graphm-replay -hours 6 -log          # print the deterministic ticket log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphm/internal/replay"
)

func main() {
	var (
		hours    = flag.Int("hours", 168, "trace length in hours")
		seed     = flag.Int64("seed", 42, "trace and scheduling seed")
		tenants  = flag.Int("tenants", 4, "number of tenants arrivals are spread across")
		inflight = flag.Int("inflight", 0, "admission cap (0 = default 24)")
		joblen   = flag.Float64("joblen", 0, "mean virtual job duration in hours (0 = default 2.0)")
		workers  = flag.Int("workers", 0, "streaming-executor width (0 = legacy serial driver)")
		queue    = flag.Int("queue", 0, "per-tenant queue bound (0 = service default)")
		showLog  = flag.Bool("log", false, "print the full deterministic ticket log before the summary")
	)
	flag.Parse()
	cfg := replay.Config{
		Hours:              *hours,
		Seed:               *seed,
		Tenants:            *tenants,
		MaxInFlight:        *inflight,
		JobHours:           *joblen,
		Workers:            *workers,
		MaxQueuedPerTenant: *queue,
	}
	if err := run(cfg, *showLog, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphm-replay:", err)
		os.Exit(1)
	}
}

// run executes the replay and writes the (optionally log-prefixed) summary.
func run(cfg replay.Config, showLog bool, w io.Writer) error {
	rep, err := replay.Run(cfg)
	if err != nil {
		return err
	}
	if showLog {
		if _, err := io.WriteString(w, rep.LogText()); err != nil {
			return err
		}
	}
	rep.Summary(w)
	return nil
}

package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphm/internal/goldentest"
	"graphm/internal/replay"
)

var update = flag.Bool("update", false, "rewrite the golden summary file")

// TestGoldenSummaryLayout pins graphm-replay's summary table layout under a
// fixed seed. Refresh intentionally with
//
//	go test ./cmd/graphm-replay -run TestGolden -update
func TestGoldenSummaryLayout(t *testing.T) {
	var sb strings.Builder
	if err := run(replay.Config{Hours: 12, Seed: 42}, false, &sb); err != nil {
		t.Fatal(err)
	}
	got := goldentest.Normalize(sb.String())
	path := filepath.Join("testdata", "summary.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("summary layout drifted from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, string(want))
	}
}

// TestLogOutputDeterministic: the -log output for a fixed seed is
// byte-identical across invocations (the summary's wall-clock line is not,
// which is why the golden test masks numbers — the raw log needs no mask).
func TestLogOutputDeterministic(t *testing.T) {
	render := func() string {
		rep, err := replay.Run(replay.Config{Hours: 8, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return rep.LogText()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("ticket log differs between same-seed runs")
	}
	if !strings.Contains(a, "submit") || !strings.Contains(a, "admit") || !strings.Contains(a, "done") {
		t.Fatalf("log missing lifecycle lines:\n%.400s", a)
	}
}

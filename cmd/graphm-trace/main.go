// Command graphm-trace generates and inspects the synthetic concurrent-job
// trace standing in for the paper's proprietary social-network trace
// (Figures 2 and 4).
//
// Usage:
//
//	graphm-trace -hours 168 -seed 42            # concurrency series
//	graphm-trace -hours 24 -sharing             # sharing profile per hour
package main

import (
	"flag"
	"fmt"
	"strings"

	"graphm/internal/trace"
)

func main() {
	var (
		hours   = flag.Int("hours", 168, "trace length in hours")
		seed    = flag.Int64("seed", 42, "generator seed")
		sharing = flag.Bool("sharing", false, "print the graph-sharing profile instead of the series")
		jobLen  = flag.Float64("joblen", 1.0, "assumed job duration in hours")
	)
	flag.Parse()

	tr := trace.Generate(*hours, *seed)
	series := tr.Concurrency(*jobLen)

	if *sharing {
		fmt.Println("hour  jobs  >1 jobs  >2 jobs  >4 jobs  >8 jobs")
		for h := 0; h < len(series); h += *hours / 12 {
			k := series[h]
			p := trace.Sharing(k, 0.9)
			fmt.Printf("%-4d  %-4d  %-7.1f  %-7.1f  %-7.1f  %-7.1f\n",
				h, k, 100*p.MoreThan1, 100*p.MoreThan2, 100*p.MoreThan4, 100*p.MoreThan8)
		}
		return
	}

	fmt.Printf("trace: %d submissions over %d hours\n", len(tr.Events), *hours)
	st := tr.ConcurrencyStats(*jobLen)
	fmt.Printf("concurrency: peak=%d mean=%.1f (paper: peak>30 mean~16)\n\n", st.Peak, st.Mean)
	for h := 0; h < len(series); h++ {
		if h%4 != 0 {
			continue
		}
		fmt.Printf("h%-4d %3d %s\n", h, series[h], strings.Repeat("#", series[h]))
	}
}

// Command graphm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	graphm-bench -list
//	graphm-bench -exp fig9
//	graphm-bench -exp all [-jobs 16] [-cores 8] [-seed 42]
//
// Each experiment prints one or more aligned text tables with the same
// rows/series as the corresponding table or figure in the paper, plus a
// note recalling the paper's reported shape for comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"graphm/internal/bench"
	"graphm/internal/profiles"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list   = flag.Bool("list", false, "list experiments")
		jobs   = flag.Int("jobs", 16, "concurrent job count for the overall comparison")
		cores  = flag.Int("cores", 8, "simulated core count")
		seed   = flag.Int64("seed", 42, "workload seed")
		asJSON = flag.Bool("json", false, "emit tables as JSON")
		cpuPro = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memPro = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	stop, err := profiles.Start(*cpuPro, *memPro)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphm-bench: %v\n", err)
		os.Exit(1)
	}
	defer stop()

	if *list {
		for _, name := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", name, bench.Describe(name))
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "graphm-bench: pass -exp <name> or -list")
		os.Exit(2)
	}

	h := bench.New(os.Stdout)
	h.JobCount = *jobs
	h.Cores = *cores
	h.Seed = *seed
	h.JSON = *asJSON

	if *exp == "all" {
		err = h.RunAll()
	} else {
		err = h.Run(*exp)
	}
	if err != nil {
		stop() // flush profiles before exiting
		fmt.Fprintf(os.Stderr, "graphm-bench: %v\n", err)
		os.Exit(1)
	}
}

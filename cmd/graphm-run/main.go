// Command graphm-run executes an ad-hoc concurrent workload on a dataset
// under a chosen engine and execution scheme, and prints a per-job and
// aggregate report — the day-to-day tool a platform operator would use to
// size a GraphM deployment.
//
// Usage:
//
//	graphm-run -dataset twitter -scheme M -jobs 8
//	graphm-run -dataset uk-union -scheme C -algos pagerank,bfs -jobs 4
//	graphm-run -dataset livej -scheme M -algos ppr,labelprop,kcore -cores 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"graphm/internal/algorithms"
	"graphm/internal/bench"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/gridgraph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func main() {
	var (
		dataset = flag.String("dataset", "twitter", "dataset preset")
		scheme  = flag.String("scheme", "M", "execution scheme: S, C or M")
		nJobs   = flag.Int("jobs", 8, "number of concurrent jobs")
		cores   = flag.Int("cores", 8, "simulated core count")
		algos   = flag.String("algos", "", "comma-separated algorithm rotation (default: wcc,pagerank,sssp,bfs)")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	env, err := bench.NewGridEnv(*dataset)
	if err != nil {
		fatal(err)
	}
	wf := func() *jobs.Workload { return buildWorkload(*algos, *nJobs, *seed) }
	res, err := env.RunScheme(strings.ToUpper(*scheme), wf, bench.RunOptions{Cores: *cores})
	if err != nil {
		fatal(err)
	}

	// Re-run once more to keep the jobs for the per-job report (RunScheme
	// consumes a fresh workload; rebuild and run the reporting pass on M).
	w := wf()
	perJob, err := runReporting(env, strings.ToUpper(*scheme), w, *cores)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset %s: %d vertices, %d edges (out-of-core: %v), grid %dx%d\n",
		env.Spec.Name, env.Spec.NumV, env.Spec.NumE, env.Spec.OutOfCore, env.GridP, env.GridP)
	fmt.Printf("scheme GridGraph-%s, %d jobs, %d cores\n\n", strings.ToUpper(*scheme), *nJobs, *cores)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\talgorithm\titers\tscanned\tprocessed\tLLC miss\tsim time")
	for _, j := range perJob {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%.1f%%\t%.3fs\n",
			j.ID, j.Prog.Name(), j.Met.Iterations, j.Met.ScannedEdges, j.Met.ProcessedEdges,
			100*j.Ctr.MissRate(), float64(j.Met.SimTotalNS())/1e9)
	}
	tw.Flush()

	fmt.Printf("\naggregate: makespan %.3fs (sim), wall %v\n", res.MakespanSec(), res.Wall)
	fmt.Printf("I/O: %.2f MB read in %d ops; peak memory %.2f MB\n",
		float64(res.IOBytes)/(1<<20), res.IOLoads, float64(res.MemPeak)/(1<<20))
	fmt.Printf("LLC: %.1f%% miss rate, %.2f MB swapped in\n",
		100*res.LLCMissRate(), float64(res.SwappedBytes)/(1<<20))
	if res.SysStats != nil {
		fmt.Printf("GraphM: %d rounds, %d shared loads, %d chunks of %d bytes, %d suspensions\n",
			res.SysStats.Rounds, res.SysStats.SharedLoads, res.SysStats.NumChunks,
			res.SysStats.ChunkBytes, res.SysStats.Suspensions)
	}
}

// buildWorkload assembles the rotation, honouring a custom algorithm list.
func buildWorkload(algos string, n int, seed int64) *jobs.Workload {
	if algos == "" {
		return jobs.Rotation(n, seed)
	}
	names := strings.Split(algos, ",")
	rng := rand.New(rand.NewSource(seed))
	w := &jobs.Workload{}
	for i := 0; i < n; i++ {
		name := strings.TrimSpace(names[i%len(names)])
		w.Jobs = append(w.Jobs, engine.NewJob(i+1, newProgram(name, rng), rng.Int63()))
		w.Delay = append(w.Delay, 0)
	}
	return w
}

// newProgram extends the benchmark rotation with the extra algorithms.
func newProgram(name string, rng *rand.Rand) engine.Program {
	switch name {
	case "ppr":
		return algorithms.NewRandomPPR()
	case "labelprop":
		return algorithms.NewLabelPropagation(0)
	case "kcore":
		return algorithms.NewKCore(0)
	default:
		return jobs.NewProgram(name, rng)
	}
}

// runReporting executes w under the scheme on fresh storage so the caller
// can inspect per-job counters.
func runReporting(env *bench.GridEnv, scheme string, w *jobs.Workload, cores int) ([]*engine.Job, error) {
	disk := env.Disk
	disk.ResetCounters()
	disk.DropCaches()
	disk.SetPageCache(env.Spec.MemBudget)
	mem := storage.NewMemory(disk, env.Spec.MemBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(env.Spec.LLCBytes))
	if err != nil {
		return nil, err
	}
	switch scheme {
	case bench.SchemeS:
		r := gridgraph.NewRunner(env.Grid, mem, cache)
		return w.Jobs, r.RunSequential(w.Jobs)
	case bench.SchemeC:
		r := gridgraph.NewRunner(env.Grid, mem, cache)
		r.Cores = cores
		return w.Jobs, r.RunConcurrent(w.Jobs)
	case bench.SchemeM:
		cfg := core.DefaultConfig(env.Spec.LLCBytes)
		cfg.Cores = cores
		sys, err := core.NewSystem(env.Grid.AsLayout(), mem, cache, cfg)
		if err != nil {
			return nil, err
		}
		return w.Jobs, sys.Run(w.Jobs)
	}
	return nil, fmt.Errorf("unknown scheme %q", scheme)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "graphm-run: %v\n", err)
	os.Exit(1)
}

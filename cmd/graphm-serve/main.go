// Command graphm-serve runs the online job-admission service against one
// dataset, in one of two modes.
//
// One-shot (legacy, the default): jobs arrive at Poisson-staggered times,
// join the streaming round already in flight at the next partition barrier,
// depart independently, and the process prints a report and exits — the
// paper's dynamic-concurrency scenario as a finite run.
//
// Daemon (-listen): the process becomes a long-running HTTP/JSON server
// (internal/server) — clients submit jobs over the socket, poll tickets,
// scrape Prometheus /metrics with rolling SLO windows, and shut the daemon
// down with POST /v1/drain or SIGTERM, which drains in-flight work and
// prints the final recovery state. See docs/API.md for the API reference.
//
// Usage:
//
//	graphm-serve -dataset twitter -jobs 12 -rate 40
//	graphm-serve -dataset uk-union -jobs 16 -tenants 4 -max-inflight 8
//	graphm-serve -dataset livej -algos pagerank,bfs -rate 100 -seed 7
//	graphm-serve -dataset twitter -listen :8080 -rate-limit 50 -slo-window 5m
//
// The one-shot report shows each ticket's lifecycle (queue wait, runtime,
// final status) and the sharing the admission layer achieved: shared
// partition loads, mid-round joins and arrival throughput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"graphm/internal/bench"
	"graphm/internal/core"
	"graphm/internal/faultfs"
	"graphm/internal/memsim"
	"graphm/internal/profiles"
	"graphm/internal/server"
	"graphm/internal/service"
	"graphm/internal/shard"
	"graphm/internal/storage"
)

func main() {
	var (
		dataset   = flag.String("dataset", "twitter", "dataset preset")
		nJobs     = flag.Int("jobs", 12, "number of jobs to submit")
		rate      = flag.Float64("rate", 40, "mean arrival rate, jobs per second")
		tenants   = flag.Int("tenants", 2, "number of tenants arrivals rotate across")
		algos     = flag.String("algos", "wcc,pagerank,sssp,bfs", "comma-separated algorithm rotation")
		inflight  = flag.Int("max-inflight", 8, "admission bound on concurrently streaming jobs")
		queueCap  = flag.Int("queue", 64, "per-tenant queue capacity (backpressure beyond it)")
		cores     = flag.Int("cores", 8, "simulated core count")
		workers   = flag.Int("workers", 0, "real-concurrency width of the streaming executor (0 = legacy serial driver)")
		adaptive  = flag.Bool("adaptive", false, "re-label chunks at partition barriers as the attending-job count moves (Formula 1 with N = live attendees)")
		relabelF  = flag.Float64("relabel-factor", 0, "adaptive chunking hysteresis factor (0 = default 2): re-label only on >= factor-x chunk-size drift")
		shards    = flag.Int("shards", 0, "partition the graph across N shards, each its own streaming system (0 = single system); sharded mode is memory-only")
		seed      = flag.Int64("seed", 42, "arrival and parameter seed")
		quietFlag = flag.Bool("q", false, "suppress the per-ticket table")
		cpuPro    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memPro    = flag.String("memprofile", "", "write a heap profile at exit to this file")

		listen    = flag.String("listen", "", "daemon mode: serve the HTTP/JSON API on this address (e.g. :8080) instead of the one-shot run")
		rateLimit = flag.Float64("rate-limit", 0, "daemon mode: per-tenant submission rate limit, jobs/s (0 = unlimited)")
		burst     = flag.Float64("burst", 0, "daemon mode: rate-limit burst size (0 = rate-limit rounded up)")
		sloWindow = flag.Duration("slo-window", 5*time.Minute, "daemon mode: rolling SLO window span exported by /metrics")
		dataDir   = flag.String("data-dir", "", "daemon mode: durable storage directory (WAL + checkpoints + ticket log); empty = in-memory only")
		ckEvery   = flag.Int("checkpoint-every", 0, "daemon mode: write a checkpoint every N WAL records (0 = default 256, negative = never)")
		noFsync   = flag.Bool("no-fsync", false, "daemon mode: skip fsync on the WAL and ticket log (faster, loses the power-failure guarantee)")
		faultSch  = flag.String("fault-schedule", "", "daemon mode, DEVELOPMENT ONLY: inject storage faults per this schedule (comma-separated op:kind[:path=sub][:after=N][:count=M][:p=F][:delay=D] rules; see internal/faultfs)")
		faultSeed = flag.Int64("fault-seed", 1, "daemon mode: RNG seed for probabilistic -fault-schedule rules")
	)
	flag.Parse()
	if *listen == "" && (*nJobs <= 0 || *rate <= 0 || *tenants <= 0) {
		fatal(fmt.Errorf("jobs, rate and tenants must be positive"))
	}
	if *dataDir != "" && *listen == "" {
		fatal(fmt.Errorf("-data-dir requires daemon mode (-listen)"))
	}
	if *shards > 0 && *dataDir != "" {
		fatal(fmt.Errorf("-shards is memory-only: the durable store (WAL, checkpoints) covers a single system, not a partitioned group"))
	}
	stop, err := profiles.Start(*cpuPro, *memPro)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	env, err := bench.NewGridEnv(*dataset)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig(env.Spec.LLCBytes)
	cfg.Cores = *cores
	cfg.Workers = *workers
	cfg.AdaptiveChunking = *adaptive
	cfg.RelabelFactor = *relabelF
	var backend server.Backend
	if *shards > 0 {
		grp, err := shard.New(env.Grid.AsLayout(), *shards, env.Spec.MemBudget, cfg)
		if err != nil {
			fatal(err)
		}
		backend = grp
	} else {
		mem := storage.NewMemory(env.Disk, env.Spec.MemBudget)
		cache, err := memsim.NewCache(memsim.DefaultConfig(env.Spec.LLCBytes))
		if err != nil {
			fatal(err)
		}
		sys, err := core.NewSystem(env.Grid.AsLayout(), mem, cache, cfg)
		if err != nil {
			fatal(err)
		}
		backend = sys
	}
	svcCfg := service.Config{
		MaxInFlight:        *inflight,
		MaxQueuedPerTenant: *queueCap,
		Seed:               *seed,
	}

	fmt.Printf("dataset %s: %d vertices, %d edges, grid %dx%d\n",
		env.Spec.Name, env.Spec.NumV, env.Spec.NumE, env.GridP, env.GridP)
	if grp, ok := backend.(*shard.Group); ok {
		fmt.Printf("sharded: %d shards over %d partitions (scatter/gather rounds, byte-metered cross-shard handoffs)\n",
			grp.Shards(), env.GridP*env.GridP)
	}

	if *listen != "" {
		var store *storage.Store
		var recovery *storage.Recovery
		if *dataDir != "" {
			var fsys faultfs.FS
			if *faultSch != "" {
				sched, err := faultfs.ParseSchedule(*faultSch)
				if err != nil {
					fatal(fmt.Errorf("-fault-schedule: %w", err))
				}
				fmt.Fprintf(os.Stderr, "graphm-serve: FAULT INJECTION ARMED (seed %d): %s\n", *faultSeed, sched)
				fsys = faultfs.New(faultfs.OS{}, sched, rand.New(rand.NewSource(*faultSeed)))
			}
			store, recovery, err = storage.Open(*dataDir, storage.StoreOptions{
				NoSync:                 *noFsync,
				CheckpointEveryRecords: *ckEvery,
				FS:                     fsys,
			})
			if err != nil {
				fatal(err)
			}
			svcCfg.TicketLog = store
		}
		runDaemon(backend, svcCfg, server.Config{
			RatePerSec: *rateLimit,
			Burst:      *burst,
			SLOWindow:  *sloWindow,
		}, *listen, store, recovery)
		return
	}

	svc := service.NewWithBackend(backend, svcCfg)
	fmt.Printf("serving %d jobs at ~%.0f jobs/s across %d tenants (max in-flight %d)\n\n",
		*nJobs, *rate, *tenants, *inflight)

	rotation := strings.Split(*algos, ",")
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var tickets []*service.Ticket
	for i := 0; i < *nJobs; i++ {
		if i > 0 {
			// Open-loop Poisson arrivals: exponential inter-arrival gaps.
			time.Sleep(time.Duration(rng.ExpFloat64() / *rate * float64(time.Second)))
		}
		algo := strings.TrimSpace(rotation[i%len(rotation)])
		tk, err := svc.Submit(service.Request{
			Tenant: fmt.Sprintf("tenant-%d", i%*tenants),
			Algo:   algo,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphm-serve: job %d (%s) rejected: %v\n", i+1, algo, err)
			continue
		}
		tickets = append(tickets, tk)
	}
	if err := svc.Drain(); err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if !*quietFlag {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "job\ttenant\talgo\tstatus\tqueue wait\truntime(real)\tsim time\tMedges/s\titers\tshared loads seen")
		for _, tk := range tickets {
			st := tk.Wait()
			// Streaming throughput: edges scanned past the job per second of
			// real runtime — what the hot path actually sustained for this
			// ticket on this machine.
			medges := 0.0
			if rt := tk.Runtime(); rt > 0 {
				medges = float64(tk.Job().Met.ScannedEdges) / rt.Seconds() / 1e6
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f\t%d\t%d\n",
				tk.ID, tk.Tenant, tk.Algo, st,
				tk.QueueWait().Round(time.Microsecond), tk.Runtime().Round(time.Microsecond),
				tk.SimRuntime().Round(time.Microsecond), medges,
				tk.Job().Met.Iterations, tk.StatsDelta().SharedLoads)
		}
		tw.Flush()
		fmt.Println()
	}

	snap := svc.Snapshot()
	stats := svc.SystemStats()
	fmt.Printf("admitted %d jobs (%d completed, %d canceled, %d failed, %d rejected)\n",
		snap.Admitted, snap.Completed, snap.Canceled, snap.Failed, snap.Rejected)
	fmt.Printf("throughput: %.1f jobs/s over %v wall (peak %d in flight, %d queued)\n",
		float64(snap.Completed)/wall.Seconds(), wall.Round(time.Millisecond),
		snap.PeakInFlight, snap.PeakQueued)
	fmt.Printf("sharing: %d shared partition loads, %d mid-round joins, %d rounds, %d suspensions\n",
		stats.SharedLoads, stats.MidRoundJoins, stats.Rounds, stats.Suspensions)
	if *adaptive {
		fmt.Printf("adaptive chunking: %d re-labels as attendance moved, %d skipped under hysteresis\n",
			stats.Relabels, stats.RelabelSkips)
	}
	if stats.SharedLoads == 0 {
		fmt.Println("warning: no partition load was shared — arrivals too sparse, or -max-inflight too tight, for this dataset")
	}
}

// runDaemon serves the HTTP/JSON API on addr until SIGTERM or SIGINT, then
// drains in-flight work, shuts the listener down, and prints the final
// recovery state as JSON. The process exits 0 when every admitted job
// terminated cleanly. With a store, startup first replays the directory
// (checkpoint + WAL + pending-ticket re-admission), and a housekeeping loop
// writes checkpoints as the record cadence comes due.
func runDaemon(sys server.Backend, svcCfg service.Config, cfg server.Config, addr string, store *storage.Store, recovery *storage.Recovery) {
	srv := server.NewWithBackend(sys, svcCfg, cfg)
	if store != nil {
		if recovery.HasCheckpoint || recovery.WALRecords > 0 || recovery.Counts.Submitted > 0 {
			rec, err := srv.Restore(store, recovery)
			if err != nil {
				fatal(fmt.Errorf("recovery from %s: %w", store.Dir(), err))
			}
			fmt.Printf("recovered %s: checkpoint v%d + %d WAL records, %d tickets resumed (%d unresumable)\n",
				store.Dir(), rec.CheckpointVersion, rec.WALRecords, rec.ResumedTickets, rec.FailedTickets)
		} else {
			srv.AttachStore(store)
			fmt.Printf("durable storage at %s (fresh directory)\n", store.Dir())
		}
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	fmt.Printf("daemon listening on %s (max in-flight %d, SLO window %v); SIGTERM drains\n",
		addr, svcCfg.MaxInFlight, cfg.SLOWindow)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	// Housekeeping: fold the WAL into a checkpoint whenever the record
	// cadence comes due (so recovery replay stays short and old segments are
	// garbage-collected), and, while the daemon sits in degraded read-only
	// mode, probe the durable path each tick so a healed disk re-arms writes
	// without operator intervention.
	ckStop := make(chan struct{})
	if store != nil {
		go func() {
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-ckStop:
					return
				case <-tick.C:
					if degraded, cause, detail := srv.Degraded(); degraded {
						if srv.ProbeRecovery() {
							fmt.Fprintf(os.Stderr, "graphm-serve: durable path recovered (was degraded: %s)\n", cause)
						} else {
							fmt.Fprintf(os.Stderr, "graphm-serve: degraded (%s): %s\n", cause, detail)
						}
						continue
					}
					if _, err := srv.MaybeCheckpoint(false); err != nil {
						fmt.Fprintf(os.Stderr, "graphm-serve: checkpoint: %v\n", err)
					}
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "graphm-serve: caught %v, draining\n", sig)
	case err := <-errc:
		fatal(err)
	}
	close(ckStop)

	// Stop admitting and run every queued and in-flight ticket down before
	// closing the listener, so clients can still poll tickets and scrape
	// /metrics while the drain runs. Drain also writes the final checkpoint.
	st := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "graphm-serve: shutdown: %v\n", err)
	}
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "graphm-serve: store close: %v\n", err)
		}
	}

	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(out))
	if st.Error != "" || st.Failed != 0 {
		if stopProfiles != nil {
			stopProfiles()
		}
		os.Exit(1)
	}
}

// stopProfiles flushes the -cpuprofile/-memprofile output; fatal must run
// it because os.Exit skips the deferred call in main.
var stopProfiles func()

func fatal(err error) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintf(os.Stderr, "graphm-serve: %v\n", err)
	os.Exit(1)
}

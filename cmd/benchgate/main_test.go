package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: graphm
BenchmarkFig03Motivation-8   	       3	 578921012 ns/op
BenchmarkFig03Motivation-8   	       3	 600000000 ns/op
BenchmarkTable3Preprocess 	       1	 327797443 ns/op
BenchmarkParallelExecutor-4 	       3	6404019132 ns/op	 120 B/op	       2 allocs/op
PASS
ok  	graphm	65.1s
`

const splitOutput = `goos: linux
BenchmarkParallelExecutor 	== parallel executor: 8 jobs, uk-union (out-of-core), worker sweep ==
workers  wall    speedup
1        2.903s  1.00x
note: sim makespan prices counted work
       3	6413956881 ns/op
BenchmarkTable3Preprocess 	== Table 3 ==
rows here
       3	 327071091 ns/op
PASS
`

// TestParseBenchSplitLines covers benchmarks that print experiment tables,
// separating the name line from the ns/op result line.
func TestParseBenchSplitLines(t *testing.T) {
	res, err := parseBench(strings.NewReader(splitOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkParallelExecutor": 6413956881,
		"BenchmarkTable3Preprocess": 327071091,
	}
	if len(res.NsPerOp) != len(want) {
		t.Fatalf("parsed %+v, want %+v", res.NsPerOp, want)
	}
	for name, ns := range want {
		if res.NsPerOp[name] != ns {
			t.Fatalf("%s = %v, want %v", name, res.NsPerOp[name], ns)
		}
	}
}

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFig03Motivation":  578921012, // min of the two lines
		"BenchmarkTable3Preprocess": 327797443,
		"BenchmarkParallelExecutor": 6404019132,
	}
	if len(res.NsPerOp) != len(want) {
		t.Fatalf("parsed %d entries, want %d: %+v", len(res.NsPerOp), len(want), res.NsPerOp)
	}
	for name, ns := range want {
		if res.NsPerOp[name] != ns {
			t.Fatalf("%s = %v, want %v", name, res.NsPerOp[name], ns)
		}
	}
}

func TestCompareDetectsSingleRegression(t *testing.T) {
	base := &Result{NsPerOp: map[string]float64{"A": 100, "B": 100, "C": 100}}
	cur := &Result{NsPerOp: map[string]float64{"A": 100, "B": 100, "C": 200}}
	report, failed := compare(base, cur, 1.25, true)
	if !failed {
		t.Fatalf("2x regression of C not caught:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report lacks verdict:\n%s", report)
	}
}

func TestCompareNormalizesUniformSlowdown(t *testing.T) {
	// A CI runner that is uniformly 2x slower must not fail the gate.
	base := &Result{NsPerOp: map[string]float64{"A": 100, "B": 300, "C": 50}}
	cur := &Result{NsPerOp: map[string]float64{"A": 200, "B": 600, "C": 100}}
	report, failed := compare(base, cur, 1.25, true)
	if failed {
		t.Fatalf("uniform 2x slowdown flagged as regression:\n%s", report)
	}
}

func TestCompareRawRatios(t *testing.T) {
	base := &Result{NsPerOp: map[string]float64{"A": 100, "B": 100}}
	cur := &Result{NsPerOp: map[string]float64{"A": 140, "B": 140}}
	if _, failed := compare(base, cur, 1.25, false); !failed {
		t.Fatal("raw mode missed a 40% regression")
	}
	if _, failed := compare(base, cur, 1.5, false); failed {
		t.Fatal("raw mode failed under threshold")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	// A baseline benchmark absent from the current run (e.g. it crashed
	// before reporting) must fail the gate, not shrink it silently.
	base := &Result{NsPerOp: map[string]float64{"A": 100, "B": 100}}
	cur := &Result{NsPerOp: map[string]float64{"A": 100}}
	report, failed := compare(base, cur, 1.25, true)
	if !failed {
		t.Fatalf("missing benchmark did not fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "MISSING") {
		t.Fatalf("report should name the missing benchmark:\n%s", report)
	}
	// New benchmarks in the current run are advisory, not failures.
	base = &Result{NsPerOp: map[string]float64{"A": 100}}
	cur = &Result{NsPerOp: map[string]float64{"A": 100, "New": 50}}
	if report, failed := compare(base, cur, 1.25, true); failed {
		t.Fatalf("new benchmark failed the gate:\n%s", report)
	}
}

func TestCompareEmptyBaseline(t *testing.T) {
	base := &Result{NsPerOp: map[string]float64{}}
	cur := &Result{NsPerOp: map[string]float64{"New": 100}}
	report, failed := compare(base, cur, 1.25, true)
	if failed {
		t.Fatalf("empty baseline must not fail:\n%s", report)
	}
	if !strings.Contains(report, "nothing gated") {
		t.Fatalf("report should flag the empty baseline:\n%s", report)
	}
}

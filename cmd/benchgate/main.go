// Command benchgate turns `go test -bench` output into a committed JSON
// fingerprint and gates CI on it: a benchmark that got more than the
// allowed factor slower than the committed baseline fails the build.
//
//	go test -bench '...' -benchtime=3x -run '^$' . | benchgate parse -out BENCH_2.json
//	benchgate compare -baseline BENCH_baseline.json -current BENCH_2.json -max-regress 1.25
//
// Raw ns/op is machine-dependent, so compare normalizes by default: every
// current/baseline ratio is divided by the geometric mean of all ratios
// before the threshold applies. A uniformly slower CI runner shifts every
// ratio equally and normalizes away; a single experiment regressing against
// the others does not. Pass -normalize=false for raw ratios (useful when
// baseline and current come from the same machine).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is the persisted fingerprint of one bench run.
type Result struct {
	Note       string             `json:"note,omitempty"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	SourceArgs string             `json:"source_args,omitempty"`
}

var (
	// One-line form: "BenchmarkFoo-8   3   123 ns/op".
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)
	// Split form: the benchmark printed to stdout, so the name line and the
	// "   3   123 ns/op" result line are separated by experiment output.
	benchName   = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?(\s|$)`)
	benchResult = regexp.MustCompile(`^\s*(\d+)\s+([0-9.]+) ns/op`)
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchgate parse [-out file] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchgate compare -baseline a.json -current b.json [-max-regress 1.25] [-normalize=true]")
	os.Exit(2)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("out", "", "write JSON here instead of stdout")
	note := fs.String("note", "", "free-form provenance note stored in the JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(res.NsPerOp) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	res.Note = *note
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(*out, blob, 0o644)
}

// parseBench extracts name -> ns/op from `go test -bench` output, keeping
// the minimum across duplicate observations. Benchmarks that print to
// stdout (ours render their experiment tables) split the name and the
// result across lines, so the parser carries the last seen name forward.
func parseBench(r io.Reader) (*Result, error) {
	res := &Result{NsPerOp: map[string]float64{}}
	record := func(name, nsText, line string) error {
		ns, err := strconv.ParseFloat(nsText, 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		if prev, ok := res.NsPerOp[name]; !ok || ns < prev {
			res.NsPerOp[name] = ns
		}
		return nil
	}
	pending := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if err := record(m[1], m[3], line); err != nil {
				return nil, err
			}
			pending = ""
			continue
		}
		if m := benchName.FindStringSubmatch(line); m != nil {
			pending = m[1]
			continue
		}
		if m := benchResult.FindStringSubmatch(line); m != nil && pending != "" {
			if err := record(pending, m[2], line); err != nil {
				return nil, err
			}
			pending = ""
		}
	}
	return res, sc.Err()
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline JSON")
	curPath := fs.String("current", "", "freshly parsed JSON")
	maxRegress := fs.Float64("max-regress", 1.25, "fail when a (normalized) ratio exceeds this")
	normalize := fs.Bool("normalize", true, "divide ratios by their geometric mean to factor out machine speed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("compare needs -baseline and -current")
	}
	base, err := loadResult(*basePath)
	if err != nil {
		return err
	}
	cur, err := loadResult(*curPath)
	if err != nil {
		return err
	}
	report, failed := compare(base, cur, *maxRegress, *normalize)
	fmt.Print(report)
	if failed {
		return fmt.Errorf("performance regression beyond %.0f%%", (*maxRegress-1)*100)
	}
	return nil
}

func loadResult(path string) (*Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(blob, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

// compare renders a ratio table and reports whether any shared benchmark
// regressed beyond maxRegress.
func compare(base, cur *Result, maxRegress float64, normalize bool) (string, bool) {
	var shared []string
	for name := range cur.NsPerOp {
		if _, ok := base.NsPerOp[name]; ok {
			shared = append(shared, name)
		}
	}
	sort.Strings(shared)
	out := ""
	if len(shared) == 0 && len(base.NsPerOp) == 0 {
		return "benchgate: empty baseline — nothing gated\n", false
	}
	scale := 1.0
	if normalize && len(shared) > 0 {
		logSum := 0.0
		for _, name := range shared {
			logSum += math.Log(cur.NsPerOp[name] / base.NsPerOp[name])
		}
		scale = math.Exp(logSum / float64(len(shared)))
		out += fmt.Sprintf("machine-speed factor (geomean current/baseline): %.3f\n", scale)
	}
	failed := false
	for _, name := range shared {
		ratio := cur.NsPerOp[name] / base.NsPerOp[name] / scale
		verdict := "ok"
		if ratio > maxRegress {
			verdict = "REGRESSED"
			failed = true
		}
		out += fmt.Sprintf("%-40s baseline %14.0f ns/op  current %14.0f ns/op  ratio %5.2f  %s\n",
			name, base.NsPerOp[name], cur.NsPerOp[name], ratio, verdict)
	}
	var extra, missing []string
	for name := range cur.NsPerOp {
		if _, ok := base.NsPerOp[name]; !ok {
			extra = append(extra, name)
		}
	}
	for name := range base.NsPerOp {
		if _, ok := cur.NsPerOp[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(extra)
	sort.Strings(missing)
	for _, name := range extra {
		out += fmt.Sprintf("%-40s new benchmark (not in baseline; commit a refreshed baseline to gate it)\n", name)
	}
	// A baseline benchmark absent from the current run means the gate lost
	// coverage (most likely the benchmark crashed before reporting) — that
	// must fail the build, not silently shrink the gated set.
	for _, name := range missing {
		out += fmt.Sprintf("%-40s MISSING from current run\n", name)
		failed = true
	}
	return out, failed
}

// Command graphm-prep runs the graph preprocessor in isolation: it
// generates (or reads) a graph, converts it to an engine's native layout,
// labels it with GraphM's Algorithm 1, and reports timing plus metadata
// overhead — the measurements behind Table 3.
//
// Usage:
//
//	graphm-prep -dataset twitter -engine gridgraph
//	graphm-prep -in graph.gmef -engine graphchi
//	graphm-prep -dataset livej -out livej.gmef   # export the edge file
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphm/internal/chunk"
	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/graphchi"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func main() {
	var (
		dataset  = flag.String("dataset", "twitter", "dataset preset (livej|orkut|twitter|uk-union|clueweb)")
		in       = flag.String("in", "", "read a graph file instead of generating a preset")
		informat = flag.String("informat", "gmef", "input format: gmef (binary) or edgelist (SNAP-style text)")
		out      = flag.String("out", "", "write the graph as a GMEF edge file and exit")
		eng      = flag.String("engine", "gridgraph", "target engine layout (gridgraph|graphchi)")
		p        = flag.Int("p", 8, "partition count parameter (grid P / shard count)")
	)
	flag.Parse()

	g, spec, err := loadGraph(*in, *informat, *dataset)
	if err != nil {
		fatal(err)
	}
	st := g.Statistics()
	fmt.Printf("graph %s: %d vertices, %d edges, %s, max out-degree %d, avg %.1f\n",
		st.Name, st.NumV, st.NumE, fmtBytes(st.SizeBytes), st.MaxOutDegree, st.AvgOutDegree)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		n, err := g.WriteTo(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", *out, fmtBytes(n))
		return
	}

	disk := storage.NewDisk()
	start := time.Now()
	var layout core.Layout
	switch *eng {
	case "gridgraph":
		grid, err := gridgraph.Build(g, *p, disk)
		if err != nil {
			fatal(err)
		}
		layout = grid.AsLayout()
	case "graphchi":
		shards, err := graphchi.Build(g, *p, disk)
		if err != nil {
			fatal(err)
		}
		layout = shards.AsLayout()
	default:
		fatal(fmt.Errorf("unknown engine %q", *eng))
	}
	convertMS := time.Since(start)

	start = time.Now()
	mem := storage.NewMemory(disk, spec.MemBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(spec.LLCBytes))
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(layout, mem, cache, core.DefaultConfig(spec.LLCBytes))
	if err != nil {
		fatal(err)
	}
	labelMS := time.Since(start)

	sstats := sys.StatsSnapshot()
	sc, _ := chunk.ChunkSize(chunk.SizeParams{
		NumCores: 8, LLCBytes: spec.LLCBytes, GraphSize: g.SizeBytes(),
		NumV: int64(g.NumV), VertexPay: 8, Reserved: spec.LLCBytes / 8,
	})
	fmt.Printf("engine conversion (%s, p=%d): %v\n", *eng, *p, convertMS)
	fmt.Printf("GraphM Init (Formula 1 + Algorithm 1): %v\n", labelMS)
	fmt.Printf("chunk size S_c: %d bytes (%d edges)\n", sc, sc/graph.EdgeSize)
	fmt.Printf("chunks: %d across %d partitions\n", sstats.NumChunks, sys.NumPartitions())
	fmt.Printf("chunk-table metadata: %s (%.1f%% of graph)\n",
		fmtBytes(sstats.MetadataBytes), 100*float64(sstats.MetadataBytes)/float64(g.SizeBytes()))
}

func loadGraph(in, informat, dataset string) (*graph.Graph, graph.DatasetSpec, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, graph.DatasetSpec{}, err
		}
		defer f.Close()
		var g *graph.Graph
		switch informat {
		case "gmef":
			g, err = graph.ReadGraph(in, f)
		case "edgelist":
			g, err = graph.ReadEdgeList(in, f)
		default:
			err = fmt.Errorf("unknown input format %q", informat)
		}
		if err != nil {
			return nil, graph.DatasetSpec{}, err
		}
		spec := graph.DatasetSpec{Name: in, MemBudget: 64 << 20, LLCBytes: 128 << 10}
		return g, spec, nil
	}
	g, spec, err := graph.Dataset(dataset)
	return g, spec, err
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "graphm-prep: %v\n", err)
	os.Exit(1)
}

// Serve: run GraphM as an online job-admission service instead of a batch.
//
// The program generates a power-law graph, starts the service layer over a
// GraphM system, and then feeds it jobs the way an online platform would:
// arrivals staggered in time, billed to two tenants, one job canceled
// mid-stream. Late arrivals attach to the round already streaming at the
// next partition barrier and share its partition loads — the paper's
// dynamic-concurrency scenario.
//
//	go run ./examples/serve
package main

import (
	"fmt"
	"log"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/service"
	"graphm/internal/storage"
)

func main() {
	// 1. A synthetic graph partitioned GridGraph-style, as in quickstart.
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("serve", 8_000, 90_000, 3))
	if err != nil {
		log.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		log.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(256 << 10))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, core.DefaultConfig(256<<10))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The admission service: at most 4 jobs streaming at once, bounded
	// queues, round-robin fairness across tenants.
	svc := service.New(sys, service.Config{MaxInFlight: 4, MaxQueuedPerTenant: 8, Seed: 1})

	// 3. Online arrivals: analytics tenant first, then a batch tenant's
	// flood, then one late interactive job — each joins whatever round is
	// in flight.
	endless := algorithms.NewPageRank(0.85, 1_000_000)
	endless.Tolerance = 0
	runaway, err := svc.Submit(service.Request{Tenant: "analytics", Prog: endless})
	if err != nil {
		log.Fatal(err)
	}
	var tickets []*service.Ticket
	for i := 0; i < 5; i++ {
		tk, err := svc.Submit(service.Request{Tenant: "batch", Algo: []string{"wcc", "bfs", "sssp"}[i%3]})
		if err != nil {
			log.Fatal(err)
		}
		tickets = append(tickets, tk)
		time.Sleep(2 * time.Millisecond)
	}
	late, err := svc.Submit(service.Request{Tenant: "analytics", Algo: "pagerank"})
	if err != nil {
		log.Fatal(err)
	}
	tickets = append(tickets, late)

	// 4. The runaway job never converges: cancel it. The service detaches
	// it from the sharing controller at its next partition barrier.
	time.Sleep(10 * time.Millisecond)
	if err := svc.Cancel(runaway.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canceled runaway job %d: %s\n", runaway.ID, runaway.Wait())

	// 5. Drain and report.
	if err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	for _, tk := range tickets {
		fmt.Printf("job %-2d %-9s %-8s %-9s queue %-10s run %-12s %d iterations\n",
			tk.ID, tk.Tenant, tk.Algo, tk.Wait(),
			tk.QueueWait().Round(time.Microsecond), tk.Runtime().Round(time.Microsecond),
			tk.Job().Met.Iterations)
	}
	stats := svc.SystemStats()
	snap := svc.Snapshot()
	fmt.Printf("\n%d jobs admitted, %d completed, %d canceled\n",
		snap.Admitted, snap.Completed, snap.Canceled)
	fmt.Printf("sharing: %d shared partition loads, %d mid-round joins, %d detaches\n",
		stats.SharedLoads, stats.MidRoundJoins, stats.Detaches)
}

// Evolving graph: consistent snapshots under mutations and updates.
//
// Section 3.3.2 of the paper: the shared graph may change while jobs run.
// A *mutation* belongs to one job (visible only to it); an *update* changes
// the shared graph for jobs submitted afterwards, while already-running
// jobs keep their snapshot through copy-on-write chunks.
//
// The example runs BFS jobs around a chunk update and shows that:
//
//   - the job submitted before the update computes distances on the old graph,
//
//   - the job submitted after computes distances on the new graph,
//
//   - a job-private mutation affects only its owner.
//
//     go run ./examples/evolving
package main

import (
	"fmt"
	"log"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func main() {
	// A long chain 0 -> 1 -> ... -> 99: BFS distances are easy to read.
	g := graph.GenerateChain("evolving", 100)
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 1, disk) // one partition, several chunks
	if err != nil {
		log.Fatal(err)
	}
	mem := storage.NewMemory(disk, 16<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(64 << 10)
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Job 1: BFS on the original chain.
	bfs1 := algorithms.NewBFS(0)
	j1 := engine.NewJob(1, bfs1, 1)
	if err := sys.Run([]*engine.Job{j1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 1 (before update): dist[99] = %d (chain length)\n", bfs1.Dist()[99])

	// Update: add a shortcut 0 -> 99 into chunk 0 of partition 0. Jobs
	// submitted after this see the shortcut; snapshots of earlier jobs
	// would not.
	chunk0, err := sys.ChunkView(-1, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	updated := append(append([]graph.Edge(nil), chunk0...), graph.Edge{Src: 0, Dst: 99, Weight: 1})
	version, err := sys.UpdateChunk(0, 0, updated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: added shortcut 0->99 (snapshot version %d)\n", version)

	// Job 2, submitted after the update, sees the shortcut.
	bfs2 := algorithms.NewBFS(0)
	j2 := engine.NewJob(2, bfs2, 2)
	if err := sys.Run([]*engine.Job{j2}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 2 (after update):  dist[99] = %d (via shortcut)\n", bfs2.Dist()[99])

	// Job 3 mutates its own view: it removes the first edge 0 -> 1. The
	// mutation is private; job 4 running concurrently still sees the full
	// updated graph.
	bfs3 := algorithms.NewBFS(0)
	j3 := engine.NewJob(3, bfs3, 3)
	bfs4 := algorithms.NewBFS(0)
	j4 := engine.NewJob(4, bfs4, 4)

	if err := sys.MutateChunk(3, 0, 0, func(edges []graph.Edge) []graph.Edge {
		out := edges[:0]
		for _, e := range edges {
			if !(e.Src == 0 && e.Dst == 1) {
				out = append(out, e)
			}
		}
		return out
	}); err != nil {
		log.Fatal(err)
	}
	sys.Submit(j3)
	sys.Submit(j4)
	if err := sys.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 3 (private mutation, 0->1 removed): dist[1] = %d (unreached=%d)\n",
		bfs3.Dist()[1], uint32(algorithms.Unreached))
	fmt.Printf("job 4 (concurrent, unmutated view):     dist[1] = %d\n", bfs4.Dist()[1])
	fmt.Printf("copy-on-write chunks still live: %d (released as jobs finish)\n", sys.OverrideChunks())
}

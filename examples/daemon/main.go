// Daemon: GraphM as a long-running HTTP service, driven as a client.
//
// The program generates a power-law graph, starts the internal/server
// HTTP/JSON daemon on an ephemeral loopback port, and then talks to it the
// way an operator's tooling would — everything through the socket, nothing
// through the Go API:
//
//   - submit jobs with POST /v1/jobs (tenant billed via X-Tenant)
//   - poll one ticket to completion with GET /v1/jobs/{id}
//   - cancel a runaway job with DELETE /v1/jobs/{id}
//   - scrape Prometheus /metrics for the sharing counters and rolling SLOs
//   - drain with POST /v1/drain and read the final recovery state
//
// See docs/API.md for the full API reference.
//
//	go run ./examples/daemon
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/server"
	"graphm/internal/service"
	"graphm/internal/storage"
)

func main() {
	// 1. A synthetic graph partitioned GridGraph-style, as in quickstart.
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("daemon", 8_000, 90_000, 3))
	if err != nil {
		log.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		log.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(256 << 10))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, core.DefaultConfig(256<<10))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The daemon on an ephemeral port: the admission service wrapped in
	// the HTTP layer, with per-tenant rate limiting and 1-minute SLO windows.
	srv := server.New(sys, service.Config{
		MaxInFlight:        4,
		MaxQueuedPerTenant: 8,
		Seed:               1,
	}, server.Config{RatePerSec: 100, SLOWindow: time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon up on %s\n\n", base)

	// 3. Submit a batch of jobs over the socket, billed to two tenants.
	var ids []int
	for i, algo := range []string{"wcc", "pagerank", "bfs", "sssp", "pagerank"} {
		tenant := "analytics"
		if i%2 == 1 {
			tenant = "batch"
		}
		id, status := submit(base, tenant, algo)
		fmt.Printf("POST /v1/jobs {%q} as %-9s -> job %d (%s)\n", algo, tenant, id, status)
		ids = append(ids, id)
	}

	// 4. Cancel the last submission: DELETE is asynchronous (202) — the
	// detach lands at the job's next partition barrier.
	runaway := ids[len(ids)-1]
	req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/jobs/%d", base, runaway), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("DELETE /v1/jobs/%d -> %s\n", runaway, resp.Status)

	// 5. Poll the first ticket to a terminal state, as a dashboard would.
	for {
		tk := getJSON(base + fmt.Sprintf("/v1/jobs/%d", ids[0]))
		status := tk["status"].(string)
		if status == "done" || status == "failed" || status == "canceled" {
			iters, _ := tk["iterations"].(float64)
			fmt.Printf("GET /v1/jobs/%d -> %s after %.0f iterations\n", ids[0], status, iters)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// 6. Scrape /metrics: the Prometheus view of the sharing counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\nGET /metrics (excerpt):")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "graphm_jobs_") ||
			strings.HasPrefix(line, "graphm_shared_loads_total ") ||
			strings.HasPrefix(line, "graphm_queue_wait_seconds{") {
			fmt.Println("  " + line)
		}
	}

	// 7. Drain over the socket: the daemon stops admitting, runs everything
	// down, and reports its final recovery state.
	dresp, err := http.Post(base+"/v1/drain", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var st server.RecoveryState
	if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	dresp.Body.Close()
	fmt.Printf("\nPOST /v1/drain -> drained: %d admitted, %d completed, %d canceled\n",
		st.Admitted, st.Completed, st.Canceled)
	fmt.Printf("sharing: %d shared partition loads, %d mid-round joins over %d rounds\n",
		st.SharedLoads, st.MidRoundJoins, st.Rounds)
	fmt.Printf("queue-wait SLO: p50 %.1fms p99 %.1fms over the last %v window\n",
		st.QueueWait.P50*1e3, st.QueueWait.P99*1e3, time.Minute)
}

// submit POSTs one job and returns its ticket id and status.
func submit(base, tenant, algo string) (int, string) {
	body, _ := json.Marshal(map[string]any{"algo": algo})
	req, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("submit %s: %s: %s", algo, resp.Status, raw)
	}
	var tk map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		log.Fatal(err)
	}
	return int(tk["id"].(float64)), tk["status"].(string)
}

// getJSON fetches one URL and decodes the JSON object it returns.
func getJSON(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}

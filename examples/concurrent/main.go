// Concurrent analytics service: the paper's motivating scenario.
//
// A stream of analytics jobs (the WCC / PageRank / SSSP / BFS rotation with
// randomised parameters) arrives with Poisson timing at a platform holding
// one social graph — the situation of Figure 2. The example executes the
// same workload three ways and prints the comparison the paper makes:
//
//	S — jobs queued and run one at a time on plain GridGraph
//	C — jobs run concurrently, each with its own graph copy (OS-managed)
//	M — jobs run concurrently under GraphM, sharing one copy
//
//	go run ./examples/concurrent [-jobs 12] [-lambda 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"graphm/internal/bench"
	"graphm/internal/graph"
	"graphm/internal/jobs"
)

func main() {
	nJobs := flag.Int("jobs", 12, "number of jobs in the arrival stream")
	lambda := flag.Float64("lambda", 8, "Poisson arrival rate")
	flag.Parse()

	env, err := bench.NewGridEnv(graph.PresetUKUnion)
	if err != nil {
		log.Fatal(err)
	}
	spec := env.Spec
	fmt.Printf("platform graph: %q, %d vertices, %d edges (out-of-core: %v)\n",
		spec.Name, spec.NumV, spec.NumE, spec.OutOfCore)
	fmt.Printf("workload: %d jobs, Poisson lambda=%.0f, rotation wcc/pagerank/sssp/bfs\n\n",
		*nJobs, *lambda)

	wf := func() *jobs.Workload {
		return jobs.Poisson(*nJobs, *lambda, 5*time.Millisecond, 7)
	}
	fmt.Println("scheme  makespan(sim s)  I/O read   LLC miss rate  peak memory")
	var base float64
	for _, scheme := range bench.Schemes {
		res, err := env.RunScheme(scheme, wf, bench.RunOptions{Cores: 8, TimeScale: 1})
		if err != nil {
			log.Fatal(err)
		}
		if scheme == bench.SchemeS {
			base = res.MakespanSec()
		}
		fmt.Printf("%-6s  %-15.3f  %-9s  %-13.1f%%  %.1fMB\n",
			"GG-"+scheme, res.MakespanSec(),
			fmt.Sprintf("%.1fMB", float64(res.IOBytes)/(1<<20)),
			100*res.LLCMissRate(),
			float64(res.MemPeak)/(1<<20))
	}
	fmt.Printf("\nGraphM speedup vs sequential: shown by makespan ratio (S=%.3fs)\n", base)
}

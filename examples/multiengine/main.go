// Multi-engine: one storage system for all (Section 1's second challenge).
//
// GraphM decouples storage from processing: the same core.System drives a
// GridGraph-style grid, a GraphChi-style shard set, a PowerGraph-style
// vertex-cut, and a Chaos-style scattered edge list, each through its
// native layout. The example runs the same four-job workload on each
// engine with and without GraphM and prints the speedup.
//
//	go run ./examples/multiengine
package main

import (
	"fmt"
	"log"

	"graphm/internal/chaos"
	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/graphchi"
	"graphm/internal/gridgraph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/powergraph"
	"graphm/internal/storage"
)

const (
	memBudget = 8 << 20
	llcBytes  = 64 << 10
	nJobs     = 8
)

func main() {
	g, spec, err := graph.Dataset(graph.PresetOrkut)
	if err != nil {
		log.Fatal(err)
	}
	_ = spec
	fmt.Printf("graph: %d vertices, %d edges; %d jobs (wcc/pagerank/sssp/bfs rotation)\n\n",
		g.NumV, g.NumEdges(), nJobs)
	fmt.Println("engine       baseline-C(sim s)  with GraphM(sim s)  speedup")

	for _, eng := range []string{"gridgraph", "graphchi", "powergraph", "chaos"} {
		base, withM, err := runBoth(eng, g)
		if err != nil {
			log.Fatalf("%s: %v", eng, err)
		}
		fmt.Printf("%-11s  %-17.3f  %-18.3f  %.2fx\n", eng, base, withM, base/withM)
	}
	fmt.Println("\nGraphM improves every engine without changing its native layout (paper Table 4).")
}

// runBoth executes the workload concurrently without GraphM (per-job graph
// copies) and with GraphM (shared copy), returning both makespans.
func runBoth(eng string, g *graph.Graph) (base, withM float64, err error) {
	run := func(shared bool) (float64, error) {
		w := jobs.Rotation(nJobs, 7)
		cache, err := memsim.NewCache(memsim.DefaultConfig(llcBytes))
		if err != nil {
			return 0, err
		}
		var layout core.Layout
		var mem *storage.Memory
		var loadHook func(int, int) uint64
		wrapSync := func() {}

		switch eng {
		case "gridgraph":
			disk := storage.NewDisk()
			grid, err := gridgraph.Build(g, 4, disk)
			if err != nil {
				return 0, err
			}
			mem = storage.NewMemory(disk, memBudget)
			if !shared {
				r := gridgraph.NewRunner(grid, mem, cache)
				r.Cores = 4
				return makespan(w, r.RunConcurrent(w.Jobs))
			}
			layout = grid.AsLayout()
		case "graphchi":
			disk := storage.NewDisk()
			shards, err := graphchi.Build(g, 4, disk)
			if err != nil {
				return 0, err
			}
			mem = storage.NewMemory(disk, memBudget)
			if !shared {
				r := graphchi.NewRunner(shards, mem, cache)
				r.Cores = 4
				return makespan(w, r.RunConcurrent(w.Jobs))
			}
			layout = shards.AsLayout()
		case "powergraph":
			cl, err := cluster.New(4, memBudget)
			if err != nil {
				return 0, err
			}
			p, err := powergraph.Build(g, cl.Nodes)
			if err != nil {
				return 0, err
			}
			mem = p.SharedMemory(memBudget)
			if !shared {
				r := powergraph.NewRunner(p, cl.Net, mem, cache)
				return makespan(w, r.RunConcurrent(w.Jobs))
			}
			layout = p.AsLayout()
			wrapSync = func() {
				for _, j := range w.Jobs {
					j.Prog = &powergraph.SyncProgram{Program: j.Prog, Job: j, Net: cl.Net, P: p}
				}
			}
		case "chaos":
			cl, err := cluster.New(4, memBudget)
			if err != nil {
				return 0, err
			}
			s, err := chaos.Build(g, cl.Nodes, 4)
			if err != nil {
				return 0, err
			}
			mem = s.SharedMemory(memBudget)
			if !shared {
				r := chaos.NewRunner(s, cl.Net, mem, cache)
				return makespan(w, r.RunConcurrent(w.Jobs))
			}
			layout = s.AsLayout()
			loadHook = s.LoadHook(cl.Net)
		}

		cfg := core.DefaultConfig(llcBytes)
		cfg.Cores = 4
		cfg.LoadHook = loadHook
		sys, err := core.NewSystem(layout, mem, cache, cfg)
		if err != nil {
			return 0, err
		}
		wrapSync()
		return makespan(w, sys.Run(w.Jobs))
	}

	if base, err = run(false); err != nil {
		return 0, 0, err
	}
	if withM, err = run(true); err != nil {
		return 0, 0, err
	}
	return base, withM, nil
}

// makespan prices the workload's counters with the shared cost model:
// compute and memory access divide across 4 cores, I/O is serial.
func makespan(w *jobs.Workload, err error) (float64, error) {
	if err != nil {
		return 0, err
	}
	var met engine.Metrics
	for _, j := range w.Jobs {
		met.Add(j.Met)
	}
	const cores = 4
	return (float64(met.SimComputeNS)/cores + float64(met.SimMemNS)/cores + float64(met.SimIONS)) / 1e9, nil
}

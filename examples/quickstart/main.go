// Quickstart: run four different graph-analytics jobs concurrently over one
// shared graph with GraphM.
//
// The program generates a power-law graph, partitions it GridGraph-style,
// plugs the layout into GraphM, and submits PageRank, WCC, BFS and SSSP at
// once. All four jobs stream a single in-memory copy of the graph in a
// common chunk order; the printout shows the sharing statistics alongside
// each job's result summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func main() {
	// 1. A synthetic social graph: 10k vertices, 120k edges, R-MAT skew.
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("quickstart", 10_000, 120_000, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (%.1f MB)\n",
		g.NumV, g.NumEdges(), float64(g.SizeBytes())/(1<<20))

	// 2. Engine-side preprocessing: a 4x4 GridGraph grid on simulated disk.
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		log.Fatal(err)
	}

	// 3. GraphM Init(): one storage system under the engine. The 256 KB
	// simulated LLC drives Formula (1) chunk sizing.
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(256 << 10))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, core.DefaultConfig(256<<10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphM: %d partitions labelled into chunks of %d bytes\n",
		sys.NumPartitions(), sys.ChunkBytes())

	// 4. Four concurrent jobs over the same graph.
	pr := algorithms.NewPageRank(0.85, 10)
	wcc := algorithms.NewWCC(100)
	bfs := algorithms.NewBFS(0)
	sssp := algorithms.NewSSSP(0)
	jobs := []*engine.Job{
		engine.NewJob(1, pr, 101),
		engine.NewJob(2, wcc, 102),
		engine.NewJob(3, bfs, 103),
		engine.NewJob(4, sssp, 104),
	}
	if err := sys.Run(jobs); err != nil {
		log.Fatal(err)
	}

	// 5. Results and sharing statistics.
	top, rank := 0, 0.0
	for v, r := range pr.Ranks() {
		if r > rank {
			top, rank = v, r
		}
	}
	comps := map[uint32]bool{}
	for _, l := range wcc.Labels() {
		comps[l] = true
	}
	reached := 0
	for _, d := range bfs.Dist() {
		if d != algorithms.Unreached {
			reached++
		}
	}
	finite, maxDist := 0, float32(0)
	for _, d := range sssp.Dist() {
		if d < float32(math.Inf(1)) {
			finite++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("pagerank: top vertex %d (rank %.5f) after %d iterations\n", top, rank, jobs[0].Met.Iterations)
	fmt.Printf("wcc:      %d components\n", len(comps))
	fmt.Printf("bfs:      %d vertices reachable from 0\n", reached)
	fmt.Printf("sssp:     %d vertices reachable, farthest at distance %.0f\n", finite, maxDist)

	st := sys.StatsSnapshot()
	fmt.Printf("\nsharing: %d rounds, %d shared partition loads, %d suspensions\n",
		st.Rounds, st.SharedLoads, st.Suspensions)
	fmt.Printf("memory:  %.1f MB peak for 4 jobs (one graph copy + 4 job states)\n",
		float64(mem.Peak())/(1<<20))
	for _, j := range jobs {
		fmt.Printf("job %d (%s): LLC miss rate %.1f%%, %d edges scanned\n",
			j.ID, j.Prog.Name(), 100*j.Ctr.MissRate(), j.Met.ScannedEdges)
	}
}

// Package graphm is a from-scratch Go reproduction of "GraphM: An Efficient
// Storage System for High Throughput of Concurrent Graph Processing"
// (Zhao et al., SC'19).
//
// GraphM is a storage runtime that plugs into existing graph engines so
// that concurrent iterative jobs over the same graph share one copy of the
// graph structure in memory and in the last-level cache, streaming it in a
// common chunk-synchronized order. See README.md for a tour,
// docs/ARCHITECTURE.md for the layer diagram and package map, and
// docs/API.md for the daemon's HTTP API reference.
//
// The public surface lives under internal/ because this is a reproduction
// repository; the root package carries the module documentation and the
// benchmark suite (bench_test.go) that regenerates every table and figure
// of the paper's evaluation:
//
//	go test -bench=. -benchmem
//
// or, experiment by experiment:
//
//	go run ./cmd/graphm-bench -list
//
// # The parallel streaming executor
//
// Simulated time (the figures) is priced from counted work and does not
// depend on real parallelism. Real wall-clock does: with
// core.Config.Workers >= 1 the round controller stops letting each job's
// goroutine stream its own chunks serially and instead hands (job, chunk)
// work items to a per-round pool of Workers goroutines, while an async
// prefetcher double-buffers the next scheduled partition's load from
// storage under the current partition's compute. The FineSync
// chunk-lockstep across attending jobs and the one-in-flight-chunk-per-job
// rule are preserved, so workers=1 reproduces the legacy serial schedule
// (and workers=0, the default, *is* the legacy driver — simulated results
// are unchanged); more workers only move work earlier in wall-clock time.
// The `parallel` bench experiment sweeps the worker count and CI gates
// ns/op regressions against the committed BENCH_baseline.json (see
// README.md, "CI").
//
// # Adaptive chunk re-labelling
//
// Formula (1) of the paper sizes logical chunks so the working sets of the
// N jobs sharing a partition fit the LLC together. Statically, N is the
// core count fixed at NewSystem; with core.Config.AdaptiveChunking the
// sharing controller re-evaluates the formula at every partition open with
// N = the jobs about to attend, re-running the Algorithm 1 labelling pass
// when the target size drifts past the RelabelFactor hysteresis (default
// 2x). Partition-open time is a barrier under both drivers — no chunk in
// flight — and snapshot chunk keys are rebased onto the new labelling, so
// every job's observed edge stream is unchanged. The `adaptive` bench
// experiment replays a deterministic attach/detach ramp
// (internal/scenario) and shows lower simulated LLC misses than static
// chunking with bit-identical algorithm outputs.
//
// # The hot path
//
// The innermost loop — one job applying one chunk with full LLC
// simulation — is batched at every layer while preserving the simulator's
// observable behaviour. The 12-byte-edge stream is walked in 64-byte
// cache-line runs (~5.3 edges), each run accounted under a single set-lock
// acquisition (memsim.Cache.TouchRun: the first access resolves hit or
// miss, the rest are hits by construction); hit/miss/processed tallies
// accumulate as integers and land in the job's Counters and the cache-wide
// totals with one atomic add per counter per chunk; simulated time is
// priced with a handful of multiplications at chunk end; and programs
// implementing engine.BatchProgram (PageRank, WCC) process a line-run per
// call instead of an interface dispatch per edge. The per-edge reference
// model survives as engine.Job.ApplyChunkPerEdge (core.Config.PerEdgeSim),
// and the scenario harness proves the two count every LLC hit and miss
// identically under the serial driver. On the controller side, the chunk
// lockstep signals per-partition wait lists instead of one global
// broadcast, so a chunk barrier wakes its own attendees and nobody else.
// The `hotpath` bench experiment reports streaming throughput (Medges/s)
// for the serial driver and the executor sweep; its serial variant is
// pinned by the CI perf gate.
//
// # Trace replay on a virtual clock
//
// internal/replay drives the paper's motivating week-long trace (Figure 2,
// synthesized by internal/trace) through the admission service with no
// wall-time sleeps: a discrete-event loop owns a core.VirtualClock
// (injected via service.Config.Clock) and plays arrivals and virtual job
// departures in simulated-time order, while every job genuinely streams
// the graph through core.System. Drivers that finish streaming park in
// service.Config.FinishGate until their virtual departure, so queue waits,
// runtimes and admission order are a pure function of (trace, seed) — the
// ticket log is byte-identical across same-seed runs, a week replays in
// seconds, and the report carries p50/p99 queue waits, per-tenant
// admission counters and the Figure 4 shared fraction next to the real
// controller counters. cmd/graphm-replay is the CLI; the `replay` bench
// experiment sweeps the in-flight cap (the Figure 15 shape).
//
// # The HTTP daemon
//
// internal/server wraps the admission service in a long-running HTTP/JSON
// daemon (cmd/graphm-serve -listen): POST /v1/jobs submits under an
// X-Tenant key (token-bucket rate limiting per tenant, queue-full → 429
// backpressure with Retry-After), GET/DELETE /v1/jobs/{id} poll and cancel
// tickets, POST /v1/drain — or SIGTERM — stops admission, runs every
// in-flight ticket down and reports the final recovery state, and GET
// /metrics exports the runtime counters plus rolling-window queue-wait and
// runtime SLOs in Prometheus text format with no external dependencies.
// The quantile math lives in internal/slo, shared with the offline replay
// reports: both paths retain exact samples and use nearest-rank
// percentiles, so the daemon's online p50/p90/p99 are differentially
// tested against the offline computation — including over a real loopback
// socket by the Figure-2 load test and the `serve-http` bench experiment.
// docs/API.md is the endpoint reference; examples/daemon is a runnable
// client.
//
// # Differential scenario fuzzing
//
// internal/scenario additionally generates its own dynamic-concurrency
// scripts: GenerateScript draws a valid barrier-anchored timeline from a
// seed, DiffCheck replays it across executor configurations (serial vs
// worker pool, static vs adaptive chunking, per-edge vs run-length LLC
// accounting) and applies every invariant the harness owns, and Minimize
// shrinks failures to corpus-ready counterexamples
// (internal/scenario/testdata/corpus, replayed as regressions). CI runs 50
// fixed-seed scripts per push; GRAPHM_FUZZ_SCRIPTS and a native go-fuzz
// target scale it to nightly length.
package graphm

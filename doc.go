// Package graphm is a from-scratch Go reproduction of "GraphM: An Efficient
// Storage System for High Throughput of Concurrent Graph Processing"
// (Zhao et al., SC'19).
//
// GraphM is a storage runtime that plugs into existing graph engines so
// that concurrent iterative jobs over the same graph share one copy of the
// graph structure in memory and in the last-level cache, streaming it in a
// common chunk-synchronized order. See README.md for a tour, DESIGN.md for
// the system inventory and simulation substitutions, and EXPERIMENTS.md for
// paper-vs-measured results.
//
// The public surface lives under internal/ because this is a reproduction
// repository; the root package carries the module documentation and the
// benchmark suite (bench_test.go) that regenerates every table and figure
// of the paper's evaluation:
//
//	go test -bench=. -benchmem
//
// or, experiment by experiment:
//
//	go run ./cmd/graphm-bench -list
package graphm

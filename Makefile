# The serial pinned benchmark subset: the perf-gate benches whose ns/op is
# baselined in BENCH_baseline.json and whose profile feeds default.pgo.
# BenchmarkParallelExecutor and the hotpath worker sweep stay out — their
# wall-clock scales with the runner's core count.
PINNED_SERIAL = ^(BenchmarkTable3Preprocess|BenchmarkFig03Motivation|BenchmarkAblation|BenchmarkHotpathSerial|BenchmarkHotpathSerialWCC|BenchmarkHotpathSerialBFS|BenchmarkHotpathSerialSSSP|BenchmarkHotpathSerialKCore|BenchmarkHotpathSerialLabelProp|BenchmarkHotpathSerialPPR)$$

.PHONY: test bench-baseline pgo release allocs print-pinned

# print-pinned emits the pinned serial regex for CI steps that need it as a
# -bench argument (Make's $$ escapes collapse to single $ anchors here).
print-pinned:
	@echo '$(PINNED_SERIAL)'

test:
	go build ./...
	go test ./...

# allocs runs the steady-state allocation gates on their own: the
# per-algorithm AllocsPerRun zero-alloc assertions over ApplyChunk plus the
# batched-accounting property tests they rest on.
allocs:
	go test -run 'TestApplyChunkZeroAlloc' -v ./internal/engine
	go test -run 'TestTouchEntries' ./internal/memsim

# bench-baseline refreshes the committed perf baseline from the pinned
# serial subset. Run on a quiet machine; CI compares every PR against this
# file with geomean-normalized ratios (>25% relative regression fails).
bench-baseline:
	go test -bench '$(PINNED_SERIAL)' -benchtime=3x -run '^$$' . \
		| go run ./cmd/benchgate parse \
			-note "pinned serial subset at -benchtime=3x; see README (CI) for the recipe" \
			-out BENCH_baseline.json

# pgo regenerates the committed default.pgo from the pinned serial subset.
# The profiling run itself is built with -pgo=off so the profile reflects
# the un-optimized binary's hot spots (profiling a PGO-built binary skews
# the sample toward whatever the previous profile missed). The Go toolchain
# picks up default.pgo at the repo root automatically for every later build.
pgo:
	go test -pgo=off -run '^$$' -bench '$(PINNED_SERIAL)' -benchtime=3x \
		-cpuprofile /tmp/graphm-pgo.prof .
	go tool pprof -proto /tmp/graphm-pgo.prof > default.pgo
	@echo "default.pgo regenerated ($$(wc -c < default.pgo) bytes)"

# release builds the PGO-optimized binaries. -pgo=auto is the default with
# default.pgo present; spelled out so a stale toolchain or a moved profile
# fails loudly instead of silently building without PGO.
release:
	go build -pgo=default.pgo -o bin/ ./cmd/...
	@echo "release binaries in bin/ (PGO: default.pgo)"
